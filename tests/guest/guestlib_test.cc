// Guest libc tests: string routines, the exploitable allocator, and
// setjmp/longjmp — exercised inside the simulator where they actually run.
#include <gtest/gtest.h>

#include "support/guest_runner.h"

namespace sm {
namespace {

using arch::u32;

using core::ProtectionMode;
using testing::run_guest;

u32 exit_code(const char* body,
              ProtectionMode mode = ProtectionMode::kSplitAll) {
  auto r = run_guest(body, mode);
  EXPECT_TRUE(r.k->all_exited()) << "guest did not exit";
  EXPECT_EQ(r.proc().exit_kind, kernel::ExitKind::kExited);
  return r.proc().exit_code;
}

TEST(GuestLibc, Strlen) {
  EXPECT_EQ(exit_code(R"(
_start:
  movi r1, s
  call strlen
  mov r1, r0
  movi r0, SYS_EXIT
  syscall
.data
s: .asciz "hello, world"
)"),
            12u);
}

TEST(GuestLibc, StrcpyCopiesIncludingNul) {
  EXPECT_EQ(exit_code(R"(
_start:
  movi r1, dst
  movi r2, src
  call strcpy
  movi r1, dst
  call strlen
  mov r1, r0
  movi r4, dst
  loadb r2, [r4+2]
  add r1, r2              ; 3 + 'd'
  movi r0, SYS_EXIT
  syscall
.data
src: .asciz "abd"
.bss
dst: .space 16
)"),
            3u + 'd');
}

TEST(GuestLibc, MemcpyAndMemset) {
  EXPECT_EQ(exit_code(R"(
_start:
  movi r1, buf
  movi r2, 0xEE
  movi r3, 32
  call memset
  movi r1, buf+8
  movi r2, src
  movi r3, 4
  call memcpy
  movi r4, buf
  loadb r1, [r4+7]        ; 0xEE
  loadb r2, [r4+8]        ; 'x'
  add r1, r2
  movi r0, SYS_EXIT
  syscall
.data
src: .ascii "xyzw"
.bss
buf: .space 32
)"),
            0xEEu + 'x');
}

TEST(GuestLibc, MallocReturnsDistinctWritableChunks) {
  EXPECT_EQ(exit_code(R"(
_start:
  call malloc_init
  movi r1, 100
  call malloc
  push r0
  movi r1, 100
  call malloc
  pop r5
  ; distinct?
  cmp r0, r5
  jz fail
  ; both writable, independently
  movi r2, 7
  store [r5], r2
  movi r2, 9
  store [r0], r2
  load r1, [r5]
  load r2, [r0]
  add r1, r2              ; 16
  movi r0, SYS_EXIT
  syscall
fail:
  movi r0, SYS_EXIT
  movi r1, 99
  syscall
)"),
            16u);
}

TEST(GuestLibc, FreeThenMallocReusesTheChunk) {
  EXPECT_EQ(exit_code(R"(
_start:
  call malloc_init
  movi r1, 64
  call malloc
  push r0
  ; allocate a barrier so the freed chunk does not merge into wilderness
  movi r1, 64
  call malloc
  pop r5
  push r5
  mov r1, r5
  call free
  movi r1, 64
  call malloc
  pop r5
  cmp r0, r5              ; first-fit: same payload back
  jz ok
  movi r0, SYS_EXIT
  movi r1, 1
  syscall
ok:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
)"),
            0u);
}

TEST(GuestLibc, FreeCoalescesForward) {
  EXPECT_EQ(exit_code(R"(
_start:
  call malloc_init
  movi r1, 64
  call malloc
  movi r4, slot_a
  store [r4], r0          ; A
  movi r1, 64
  call malloc
  movi r4, slot_b
  store [r4], r0          ; B
  movi r1, 64
  call malloc             ; C: barrier before wilderness
  movi r4, slot_b
  load r1, [r4]
  call free               ; free B
  movi r4, slot_a
  load r1, [r4]
  call free               ; free A: coalesces with B via unlink
  ; now a 128-byte request fits in the merged A+B chunk (first fit)
  movi r1, 120
  call malloc
  movi r4, slot_a
  load r5, [r4]
  cmp r0, r5
  jz ok
  movi r0, SYS_EXIT
  movi r1, 1
  syscall
ok:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
slot_a: .space 4
slot_b: .space 4
)"),
            0u);
}

TEST(GuestLibc, MallocExhaustionReturnsNull) {
  EXPECT_EQ(exit_code(R"(
_start:
  call malloc_init
  ; the arena is 256 KiB; ask for more
  movi r1, 0x80000
  call malloc
  cmpi r0, 0
  jz ok
  movi r0, SYS_EXIT
  movi r1, 1
  syscall
ok:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
)"),
            0u);
}

TEST(GuestLibc, SetjmpReturnsZeroThenLongjmpValue) {
  EXPECT_EQ(exit_code(R"(
_start:
  movi r1, jb
  call setjmp
  cmpi r0, 0
  jnz second
  ; first pass
  movi r4, counter
  load r5, [r4]
  addi r5, 1
  store [r4], r5
  movi r1, jb
  movi r2, 33
  call longjmp
second:
  ; r0 == 33, counter == 1 (no double increment)
  movi r4, counter
  load r5, [r4]
  add r0, r5
  mov r1, r0
  movi r0, SYS_EXIT
  syscall
.data
counter: .word 0
.bss
jb: .space 12
)"),
            34u);
}

TEST(GuestLibc, LongjmpUnwindsNestedFrames) {
  EXPECT_EQ(exit_code(R"(
_start:
  movi r1, jb
  call setjmp
  cmpi r0, 0
  jnz done
  call level1
  ; never reached
  movi r0, SYS_EXIT
  movi r1, 99
  syscall
level1:
  push fp
  mov fp, sp
  call level2
  mov sp, fp
  pop fp
  ret
level2:
  movi r1, jb
  movi r2, 21
  call longjmp
done:
  mov r1, r0
  movi r0, SYS_EXIT
  syscall
.bss
jb: .space 12
)"),
            21u);
}

TEST(GuestLibc, PutHexFormats) {
  const char* body = R"(
_start:
  movi r1, FD_CONSOLE
  movi r2, 0xDEADBEEF
  call put_hex_fd
  movi r1, FD_CONSOLE
  movi r2, 0x7
  call put_hex_fd
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
)";
  auto r = run_guest(body, ProtectionMode::kNone);
  EXPECT_EQ(r.console(), "0xdeadbeef\n0x00000007\n");
}

TEST(GuestLibc, ReadLineStopsAtNewlineAndTerminates) {
  const char* body = R"(
_start:
  movi r1, FD_NET
  movi r2, buf
  movi r3, 32
  call read_line
  mov r5, r0              ; length
  movi r4, buf
  loadb r1, [r4+4]        ; NUL written?
  add r5, r1
  movi r4, total
  store [r4], r5
  ; read the next line to prove the newline was consumed
  movi r1, FD_NET
  movi r2, buf
  movi r3, 32
  call read_line
  movi r4, total
  load r5, [r4]
  add r5, r0
  mov r1, r5
  movi r0, SYS_EXIT
  syscall
.bss
buf: .space 32
total: .space 4
)";
  auto r = testing::start_guest(body, ProtectionMode::kNone);
  r.chan->host_write(std::string("abcd\nxy\n"));
  r.k->run(10'000'000);
  // 4 (first line) + 0 (NUL) + 2 (second line) = 6
  EXPECT_EQ(r.proc().exit_code, 6u);
}

TEST(GuestLibc, ReadNReadsExactly) {
  const char* body = R"(
_start:
  movi r1, FD_NET
  movi r2, buf
  movi r3, 10
  call read_n
  mov r1, r0
  movi r0, SYS_EXIT
  syscall
.bss
buf: .space 16
)";
  auto r = testing::start_guest(body, ProtectionMode::kNone);
  r.chan->host_write(std::string("12345"));  // partial
  r.k->run(1'000'000);
  EXPECT_FALSE(r.k->all_exited());  // still blocked for 5 more
  r.chan->host_write(std::string("67890"));
  r.k->run(10'000'000);
  EXPECT_EQ(r.proc().exit_code, 10u);
}

}  // namespace
}  // namespace sm
