#include "image/image.h"

#include <gtest/gtest.h>

#include "asm/assembler.h"

namespace sm::image {
namespace {

Image sample_image() {
  const auto p = assembler::assemble(R"(
_start:
  movi r0, 1
  ret
.data
greeting: .asciz "hey"
.bss
buf: .space 4096
)");
  BuildOptions opts;
  opts.name = "sample";
  return build_image(p, opts);
}

TEST(Image, BuildFromProgram) {
  const Image img = sample_image();
  EXPECT_EQ(img.name, "sample");
  ASSERT_EQ(img.segments.size(), 3u);
  EXPECT_EQ(img.segments[0].name, "text");
  EXPECT_EQ(img.segments[0].prot, kProtRead | kProtExec);
  EXPECT_FALSE(img.segments[0].mixed());
  EXPECT_EQ(img.segments[1].name, "data");
  EXPECT_EQ(img.segments[1].prot, kProtRead | kProtWrite);
  EXPECT_EQ(img.segments[2].name, "bss");
  EXPECT_EQ(img.segments[2].mem_size, 4096u);
  EXPECT_TRUE(img.segments[2].bytes.empty());
  EXPECT_EQ(img.entry, img.symbol("_start"));
}

TEST(Image, MixedTextOption) {
  const auto p = assembler::assemble("_start: nop\n");
  BuildOptions opts;
  opts.mixed_text = true;
  const Image img = build_image(p, opts);
  EXPECT_TRUE(img.segments[0].mixed());
}

TEST(Image, SerializeDeserializeRoundTrip) {
  const Image img = sample_image();
  const Image back = Image::deserialize(img.serialize());
  EXPECT_EQ(back.name, img.name);
  EXPECT_EQ(back.entry, img.entry);
  ASSERT_EQ(back.segments.size(), img.segments.size());
  for (std::size_t i = 0; i < img.segments.size(); ++i) {
    EXPECT_EQ(back.segments[i].name, img.segments[i].name);
    EXPECT_EQ(back.segments[i].vaddr, img.segments[i].vaddr);
    EXPECT_EQ(back.segments[i].mem_size, img.segments[i].mem_size);
    EXPECT_EQ(back.segments[i].prot, img.segments[i].prot);
    EXPECT_EQ(back.segments[i].bytes, img.segments[i].bytes);
  }
  EXPECT_EQ(back.symbols, img.symbols);
}

TEST(Image, SignAndVerify) {
  Image img = sample_image();
  const std::vector<arch::u8> key = {'s', 'e', 'c', 'r', 'e', 't'};
  EXPECT_FALSE(img.verify(key));  // unsigned
  img.sign(key);
  EXPECT_TRUE(img.verify(key));
  const std::vector<arch::u8> wrong_key = {'w', 'r', 'o', 'n', 'g'};
  EXPECT_FALSE(img.verify(wrong_key));
}

TEST(Image, TamperedImageFailsVerification) {
  Image img = sample_image();
  const std::vector<arch::u8> key = {1, 2, 3};
  img.sign(key);
  // A trojaned byte in the text segment must invalidate the signature —
  // the DigSig-style property the paper relies on for library loading.
  img.segments[0].bytes[0] ^= 0xFF;
  EXPECT_FALSE(img.verify(key));
}

TEST(Image, SignatureSurvivesSerialization) {
  Image img = sample_image();
  const std::vector<arch::u8> key = {9, 9};
  img.sign(key);
  const Image back = Image::deserialize(img.serialize());
  EXPECT_TRUE(back.verify(key));
}

TEST(Image, TruncatedBytesRejected) {
  const Image img = sample_image();
  auto bytes = img.serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(Image::deserialize(bytes), std::runtime_error);
}

TEST(Image, BadMagicRejected) {
  auto bytes = sample_image().serialize();
  bytes[0] ^= 0x55;
  EXPECT_THROW(Image::deserialize(bytes), std::runtime_error);
}

TEST(Image, MissingSymbolThrows) {
  EXPECT_THROW(sample_image().symbol("nope"), std::out_of_range);
}

}  // namespace
}  // namespace sm::image
