#include "image/sha256.h"

#include <gtest/gtest.h>

#include <string>

namespace sm::image {
namespace {

std::vector<arch::u8> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(hex_digest(sha256(bytes(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex_digest(sha256(bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      hex_digest(sha256(bytes(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, LongInputCrossesBlockBoundaries) {
  // One million 'a' characters (FIPS 180 test vector).
  const std::vector<arch::u8> a(1'000'000, 'a');
  EXPECT_EQ(hex_digest(sha256(a)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShotAtEveryChunkAlignment) {
  // The exit-digest path streams page-sized pieces through the
  // incremental hasher; irregular chunk sizes must hit every
  // partial-block carry case (mid-block, exact block, multi-block with
  // remainder) and still match the one-shot digest.
  const std::vector<arch::u8> a(1'000'000, 'a');
  const std::string want = hex_digest(sha256(a));
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{63},
                                  std::size_t{64}, std::size_t{65},
                                  std::size_t{4096}, std::size_t{9973}}) {
    Sha256 h;
    for (std::size_t off = 0; off < a.size(); off += chunk)
      h.update(std::span(a).subspan(off, std::min(chunk, a.size() - off)));
    EXPECT_EQ(hex_digest(h.final()), want) << "chunk=" << chunk;
  }
}

TEST(HmacSha256, Rfc4231Vector1) {
  const std::vector<arch::u8> key(20, 0x0b);
  EXPECT_EQ(hex_digest(hmac_sha256(key, bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Vector2) {
  EXPECT_EQ(hex_digest(hmac_sha256(bytes("Jefe"),
                                   bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, LongKeyIsHashedFirst) {
  // RFC 4231 test case 6: 131-byte key.
  const std::vector<arch::u8> key(131, 0xaa);
  EXPECT_EQ(hex_digest(hmac_sha256(
                key, bytes("Test Using Larger Than Block-Size Key - Hash "
                           "Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

}  // namespace
}  // namespace sm::image
