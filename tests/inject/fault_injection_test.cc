// Fault-injection subsystem tests: schedule determinism and round-trips,
// injector firing/classification per fault kind, and the invariant
// watchdog's detect → repair → degrade ladder (ISSUE 5).
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "arch/page_table.h"
#include "arch/pte.h"
#include "fuzz/corpus.h"
#include "fuzz/generator.h"
#include "fuzz/rng.h"
#include "inject/fault_injector.h"
#include "inject/fault_schedule.h"
#include "invariant/watchdog.h"
#include "support/guest_runner.h"

namespace sm {
namespace {

using arch::Pte;
using arch::u32;
using arch::u64;
using arch::vpn_of;
using core::ProtectionMode;
using core::ResponseMode;
using kernel::ExitKind;

// A guest that materializes two split pages and retires a few hundred
// instructions, so count-scheduled faults have a real window to land in.
const char* kSplitWorker = R"(
_start:
  movi r4, buf
  movi r6, 0
loop:
  store [r4], r6
  addi r4, 64
  addi r6, 1
  cmpi r6, 40
  jnz loop
  movi r4, buf
  load r5, [r4]
  movi r0, SYS_EXIT
  mov r1, r5
  syscall
.bss
buf: .space 8192
)";

inject::FaultSchedule one_fault(inject::FaultKind kind, u64 after = 0,
                                u32 arg = 0) {
  inject::FaultSchedule s;
  s.faults.push_back({after, kind, arg});
  return s;
}

struct FaultRunSummary {
  ExitKind exit_kind = ExitKind::kRunning;
  u32 exit_code = 0;
  bool shell_spawned = false;
  std::vector<inject::FaultInjector::Record> records;
  u32 breaches = 0;
  u32 violations = 0;
  u32 recoveries = 0;
  u32 degradations = 0;
  u64 oom_degradations = 0;
  u64 instructions = 0;
};

FaultRunSummary run_with_faults(const std::string& body,
                                inject::FaultSchedule schedule,
                                ResponseMode response = ResponseMode::kBreak) {
  testing::GuestRun r =
      testing::start_guest(body, ProtectionMode::kSplitAll, response);
  inject::FaultInjector injector(std::move(schedule));
  invariant::InvariantWatchdog watchdog;
  injector.attach(*r.k);
  watchdog.attach(*r.k, &injector);
  r.k->run(20'000'000);
  watchdog.finalize(*r.k);

  FaultRunSummary out;
  out.exit_kind = r.proc().exit_kind;
  out.exit_code = r.proc().exit_code;
  out.shell_spawned = r.proc().shell_spawned;
  out.records = injector.records();
  out.breaches = watchdog.breaches();
  out.violations = watchdog.violations();
  out.recoveries = watchdog.recoveries();
  out.degradations = watchdog.degradations();
  out.oom_degradations = r.k->stats().split_oom_degradations;
  out.instructions = r.k->stats().instructions;
  return out;
}

// --- schedules -------------------------------------------------------------

TEST(FaultSchedule, GenerateIsDeterministicAndSorted) {
  const auto a = inject::FaultSchedule::generate(0xDEAD, 32, 10'000);
  const auto b = inject::FaultSchedule::generate(0xDEAD, 32, 10'000);
  ASSERT_EQ(a.faults.size(), 32u);
  ASSERT_EQ(b.faults.size(), 32u);
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].after_instruction, b.faults[i].after_instruction);
    EXPECT_EQ(a.faults[i].kind, b.faults[i].kind);
    EXPECT_EQ(a.faults[i].arg, b.faults[i].arg);
    EXPECT_LT(a.faults[i].after_instruction, 10'000u);
    EXPECT_LT(static_cast<u32>(a.faults[i].kind),
              static_cast<u32>(inject::FaultKind::kCount));
    if (i > 0) {
      EXPECT_LE(a.faults[i - 1].after_instruction,
                a.faults[i].after_instruction);
    }
  }
  // A different seed gives a different schedule.
  const auto c = inject::FaultSchedule::generate(0xBEEF, 32, 10'000);
  bool any_diff = false;
  for (std::size_t i = 0; i < c.faults.size(); ++i) {
    any_diff |= c.faults[i].after_instruction != a.faults[i].after_instruction;
    any_diff |= c.faults[i].kind != a.faults[i].kind;
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaultSchedule, LinesRoundTripThroughParse) {
  const auto s = inject::FaultSchedule::generate(7, 12, 5'000);
  std::vector<inject::ScheduledFault> parsed;
  std::string lines = s.to_lines();
  std::size_t start = 0;
  while (start < lines.size()) {
    std::size_t end = lines.find('\n', start);
    if (end == std::string::npos) end = lines.size();
    const std::string line = lines.substr(start, end - start);
    if (!line.empty()) {
      const auto f = inject::FaultSchedule::parse_line(line);
      ASSERT_TRUE(f.has_value()) << "unparsable: " << line;
      parsed.push_back(*f);
    }
    start = end + 1;
  }
  ASSERT_EQ(parsed.size(), s.faults.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].after_instruction, s.faults[i].after_instruction);
    EXPECT_EQ(parsed[i].kind, s.faults[i].kind);
    EXPECT_EQ(parsed[i].arg, s.faults[i].arg);
  }
  EXPECT_FALSE(inject::FaultSchedule::parse_line(";!fault").has_value());
  EXPECT_FALSE(
      inject::FaultSchedule::parse_line(";!fault 5 not-a-kind 0").has_value());
}

TEST(FaultSchedule, CorpusFileRoundTripPreservesFaults) {
  fuzz::GenOptions gopts;
  gopts.fault_count = 9;
  const fuzz::FuzzCase c = fuzz::generate(fuzz::case_seed(42, 3), gopts);
  ASSERT_EQ(c.faults.faults.size(), 9u);

  const std::string text = fuzz::to_corpus_file(c);
  const fuzz::FuzzCase back = fuzz::from_corpus_file(text);
  EXPECT_EQ(back.seed, c.seed);
  EXPECT_EQ(back.mixed_text, c.mixed_text);
  ASSERT_EQ(back.faults.faults.size(), c.faults.faults.size());
  for (std::size_t i = 0; i < c.faults.faults.size(); ++i) {
    EXPECT_EQ(back.faults.faults[i].after_instruction,
              c.faults.faults[i].after_instruction);
    EXPECT_EQ(back.faults.faults[i].kind, c.faults.faults[i].kind);
    EXPECT_EQ(back.faults.faults[i].arg, c.faults.faults[i].arg);
  }
}

TEST(FaultSchedule, KindNamesRoundTrip) {
  for (u32 i = 0; i < static_cast<u32>(inject::FaultKind::kCount); ++i) {
    const auto kind = static_cast<inject::FaultKind>(i);
    const char* name = inject::to_string(kind);
    ASSERT_NE(name, nullptr);
    const auto back = inject::fault_kind_from_string(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(inject::fault_kind_from_string("flux-capacitor").has_value());
}

// Everything below drives the run-loop hooks, which -DSM_INVARIANT=OFF
// compiles out of the kernel entirely; the schedule/corpus tests above
// stay live in that configuration.
#if SM_INVARIANT_ENABLED

// --- watchdog on a clean machine -------------------------------------------

TEST(InvariantWatchdog, CleanRunHasNoFalsePositives) {
  // No injector: the watchdog must observe an untouched protocol run
  // without a single violation, and billing must be unchanged.
  testing::GuestRun r =
      testing::start_guest(kSplitWorker, ProtectionMode::kSplitAll);
  invariant::InvariantWatchdog watchdog;
  watchdog.attach(*r.k);
  r.k->run(20'000'000);
  watchdog.finalize(*r.k);

  EXPECT_EQ(r.proc().exit_kind, ExitKind::kExited);
  EXPECT_EQ(watchdog.violations(), 0u);
  EXPECT_EQ(watchdog.breaches(), 0u);
  EXPECT_EQ(watchdog.degradations(), 0u);
  EXPECT_EQ(r.k->stats().invariant_violations, 0u);

  // Same program without the watchdog: identical retired-instruction and
  // cycle accounting (the watchdog never charges simulated time).
  testing::GuestRun clean =
      testing::run_guest(kSplitWorker, ProtectionMode::kSplitAll);
  EXPECT_EQ(r.k->stats().instructions, clean.k->stats().instructions);
  EXPECT_EQ(r.k->stats().cycles, clean.k->stats().cycles);
}

// --- per-kind firing and classification -------------------------------------

TEST(FaultInjection, SpuriousFlushIsAbsorbed) {
  const auto s = run_with_faults(kSplitWorker,
                                 one_fault(inject::FaultKind::kSpuriousTlbFlush,
                                           /*after=*/50));
  ASSERT_EQ(s.records.size(), 1u);
  ASSERT_TRUE(s.records[0].fired);
  ASSERT_TRUE(s.records[0].outcome.has_value());
  EXPECT_EQ(*s.records[0].outcome, inject::Outcome::kRecovered);
  EXPECT_EQ(s.exit_kind, ExitKind::kExited);
  EXPECT_EQ(s.breaches, 0u);
}

TEST(FaultInjection, LostDebugTrapIsRepairedByWatchdog) {
  // Arm at instruction 0: the first split fill window's debug trap is
  // swallowed. The watchdog's I4 check spots pending-without-TF and
  // replays Algorithm 2, so the guest still completes normally.
  const auto s = run_with_faults(
      kSplitWorker, one_fault(inject::FaultKind::kLostDebugTrap, 0));
  ASSERT_EQ(s.records.size(), 1u);
  ASSERT_TRUE(s.records[0].fired);
  ASSERT_TRUE(s.records[0].outcome.has_value());
  EXPECT_NE(*s.records[0].outcome, inject::Outcome::kBreach);
  EXPECT_GE(s.violations, 1u);
  EXPECT_GE(s.recoveries, 1u);
  EXPECT_EQ(s.exit_kind, ExitKind::kExited);
  EXPECT_EQ(s.breaches, 0u);
}

TEST(FaultInjection, PteCorruptionIsRepairedBehaviorUnchanged) {
  // Sub-kind 0 (unrestrict a split PTE) after the first page materialized.
  const auto s = run_with_faults(
      kSplitWorker,
      one_fault(inject::FaultKind::kPteCorruption, /*after=*/60, /*arg=*/0));
  ASSERT_EQ(s.records.size(), 1u);
  ASSERT_TRUE(s.records[0].fired);
  ASSERT_TRUE(s.records[0].outcome.has_value());
  EXPECT_NE(*s.records[0].outcome, inject::Outcome::kBreach);
  EXPECT_GE(s.violations, 1u);
  EXPECT_EQ(s.breaches, 0u);

  // The guest's observable behaviour matches the clean run.
  testing::GuestRun clean =
      testing::run_guest(kSplitWorker, ProtectionMode::kSplitAll);
  EXPECT_EQ(s.exit_kind, clean.proc().exit_kind);
  EXPECT_EQ(s.exit_code, clean.proc().exit_code);
}

TEST(FaultInjection, ItlbBitFlipNeverReachesFetch) {
  const auto s = run_with_faults(
      kSplitWorker,
      one_fault(inject::FaultKind::kItlbBitFlip, /*after=*/80, /*arg=*/3));
  ASSERT_EQ(s.records.size(), 1u);
  if (s.records[0].fired) {
    ASSERT_TRUE(s.records[0].outcome.has_value());
    EXPECT_NE(*s.records[0].outcome, inject::Outcome::kBreach);
  }
  EXPECT_EQ(s.breaches, 0u);
  EXPECT_EQ(s.exit_kind, ExitKind::kExited);
}

TEST(FaultInjection, FrameExhaustionDegradesGracefully) {
  const auto s = run_with_faults(
      kSplitWorker, one_fault(inject::FaultKind::kFrameExhaustion, 0));
  ASSERT_EQ(s.records.size(), 1u);
  ASSERT_TRUE(s.records[0].fired);
  ASSERT_TRUE(s.records[0].outcome.has_value());
  EXPECT_EQ(*s.records[0].outcome, inject::Outcome::kDegraded);
  EXPECT_EQ(s.breaches, 0u);
  // Degradation is graceful: either the split allocation path locked the
  // page unsplit (preferred), or the requesting process was killed with a
  // reported OOM — never a hang, never an escaped exception.
  EXPECT_TRUE(s.oom_degradations >= 1 ||
              s.exit_kind == ExitKind::kKilledSigsegv ||
              s.exit_kind == ExitKind::kExited)
      << "exit_kind=" << static_cast<int>(s.exit_kind);
}

TEST(FaultInjection, EveryKindClassifiedNeverSilent) {
  // One fault of every kind in a single schedule: whatever fires must end
  // the run classified; what cannot fire is reported unfired.
  inject::FaultSchedule s;
  for (u32 i = 0; i < static_cast<u32>(inject::FaultKind::kCount); ++i) {
    s.faults.push_back(
        {i * 20, static_cast<inject::FaultKind>(i), /*arg=*/i});
  }
  const auto out = run_with_faults(kSplitWorker, s);
  ASSERT_EQ(out.records.size(),
            static_cast<std::size_t>(inject::FaultKind::kCount));
  for (const auto& rec : out.records) {
    if (rec.fired) {
      EXPECT_TRUE(rec.outcome.has_value())
          << "silent fired fault: " << inject::to_string(rec.fault.kind);
      if (rec.outcome) {
        EXPECT_NE(*rec.outcome, inject::Outcome::kBreach)
            << inject::to_string(rec.fault.kind);
      }
    } else {
      EXPECT_FALSE(rec.outcome.has_value());
    }
  }
  EXPECT_EQ(out.breaches, 0u);
}

TEST(FaultInjection, ReplayIsDeterministic) {
  const auto schedule = inject::FaultSchedule::generate(0xF00D, 10, 400);
  const auto a = run_with_faults(kSplitWorker, schedule);
  const auto b = run_with_faults(kSplitWorker, schedule);
  EXPECT_EQ(a.exit_kind, b.exit_kind);
  EXPECT_EQ(a.exit_code, b.exit_code);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.degradations, b.degradations);
  EXPECT_EQ(a.breaches, b.breaches);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].fired, b.records[i].fired);
    EXPECT_EQ(a.records[i].fired_at, b.records[i].fired_at);
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome);
  }
}

// --- direct watchdog repair / degradation ladder ----------------------------

// A guest that materializes one split page and then spins, so the test can
// interleave budget-limited runs with hand-planted corruption.
const char* kSpinAfterStore = R"(
_start:
  movi r4, buf
  movi r5, 1
  store [r4], r5
spin:
  jmp spin
.bss
buf: .space 64
)";

TEST(InvariantWatchdog, HandPlantedPteCorruptionIsRepaired) {
  testing::GuestRun r =
      testing::start_guest(kSpinAfterStore, ProtectionMode::kSplitAll);
  invariant::InvariantWatchdog watchdog;
  watchdog.attach(*r.k);
  r.k->run(2'000);

  const auto program = assembler::assemble(guest::program(kSpinAfterStore));
  const u32 buf = program.symbol("buf");
  kernel::Process& p = r.proc();
  ASSERT_NE(p.as->split_pair(vpn_of(buf)), nullptr);
  ASSERT_EQ(watchdog.violations(), 0u);

  // Corrupt behind the protocol's back: lift the supervisor restriction.
  arch::PageTable pt = p.as->pt();
  Pte pte = pt.get(buf);
  ASSERT_TRUE(pte.present());
  pte.unrestrict();
  pt.set(buf, pte);

  // The per-step split-PTE scan must spot and repair it within a step.
  r.k->run(16);
  EXPECT_GE(watchdog.violations(), 1u);
  EXPECT_GE(watchdog.recoveries(), 1u);
  const Pte repaired = p.as->pt().get(buf);
  EXPECT_FALSE(repaired.user()) << "restriction not reinstated";
  EXPECT_TRUE(repaired.split());
  EXPECT_NE(p.as->split_pair(vpn_of(buf)), nullptr) << "page was not degraded";
}

TEST(InvariantWatchdog, RepeatedCorruptionDegradesToUnsplitLock) {
  testing::GuestRun r =
      testing::start_guest(kSpinAfterStore, ProtectionMode::kSplitAll);
  invariant::InvariantWatchdog watchdog;
  watchdog.attach(*r.k);
  r.k->run(2'000);

  const auto program = assembler::assemble(guest::program(kSpinAfterStore));
  const u32 buf = program.symbol("buf");
  kernel::Process& p = r.proc();
  ASSERT_NE(p.as->split_pair(vpn_of(buf)), nullptr);

  // Corrupt the same page past kRetryLimit: the watchdog must stop
  // re-repairing and lock it unsplit (graceful degradation, guest lives).
  for (u32 i = 0; i < invariant::InvariantWatchdog::kRetryLimit + 3; ++i) {
    if (p.as->split_pair(vpn_of(buf)) == nullptr) break;
    arch::PageTable pt = p.as->pt();
    Pte pte = pt.get(buf);
    pte.unrestrict();
    pt.set(buf, pte);
    r.k->run(16);
  }

  EXPECT_GE(watchdog.degradations(), 1u);
  EXPECT_EQ(p.as->split_pair(vpn_of(buf)), nullptr)
      << "page still split after exceeding the repair budget";
  EXPECT_EQ(watchdog.breaches(), 0u);
  EXPECT_EQ(p.exit_kind, ExitKind::kRunning) << "guest should survive";
  // The degraded page stays usable.
  r.k->run(100);
  EXPECT_EQ(p.exit_kind, ExitKind::kRunning);
}

#endif  // SM_INVARIANT_ENABLED

}  // namespace
}  // namespace sm
