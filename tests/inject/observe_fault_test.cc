// Observe-mode edge cases under injected faults (ISSUE 5, satellite 3):
// faults landing on a page the observe response already locked unsplit,
// a lockdown racing fork/COW, and degradation followed by mprotect.
#include <gtest/gtest.h>

#include "inject/fault_injector.h"
#include "inject/fault_schedule.h"
#include "invariant/watchdog.h"
#include "support/guest_runner.h"

// The whole file drives the run-loop hooks, which -DSM_INVARIANT=OFF
// compiles out of the kernel.
#if SM_INVARIANT_ENABLED

namespace sm {
namespace {

using arch::u32;
using arch::u64;
using core::ProtectionMode;
using core::ResponseMode;
using kernel::ExitKind;

// Classic self-injection: copy a payload into .bss and jump to it. Under
// observe mode the engine logs the detection, locks the page onto its data
// frame (now unsplit) and lets the attack proceed.
const char* kSelfInject = R"(
_start:
  movi r1, buf
  movi r2, payload
  movi r3, payload_end
  sub r3, r2
  call memcpy
  movi r5, buf
  callr r5
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.data
payload:
  movi r0, SYS_SPAWN_SHELL
  syscall
  ret
payload_end: .byte 0
.bss
buf: .space 256
)";

struct ObserveRun {
  testing::GuestRun r;
  inject::FaultInjector injector;
  invariant::InvariantWatchdog watchdog;

  ObserveRun(const std::string& body, inject::FaultSchedule schedule)
      : r(testing::start_guest(body, ProtectionMode::kSplitAll,
                               ResponseMode::kObserve)),
        injector(std::move(schedule)) {
    injector.attach(*r.k);
    watchdog.attach(*r.k, &injector);
  }

  void run() {
    r.k->run(20'000'000);
    watchdog.finalize(*r.k);
  }
};

TEST(ObserveFaults, FaultsOnAlreadyLockedPageAreHandledAsUnsplit) {
  // The lockdown page stops being split the moment observe mode fires; a
  // later corruption aimed at it must be caught by the unsplit-coherence
  // invariant (I5), not misclassified as a split-protocol breach.
  inject::FaultSchedule s;
  // TLB flips and a dropped invlpg well after the lockdown happened
  // (the whole guest retires only a few hundred instructions; the attack
  // fires within the first ~100).
  s.faults.push_back({150, inject::FaultKind::kItlbBitFlip, 1});
  s.faults.push_back({160, inject::FaultKind::kDtlbBitFlip, 2});
  s.faults.push_back({170, inject::FaultKind::kDroppedInvlpg, 0});
  ObserveRun o(kSelfInject, s);
  o.run();

  // Observe semantics preserved: detected once, attack proceeded, clean
  // exit — and nothing the injector did became a breach.
  EXPECT_EQ(o.r.k->detections().size(), 1u);
  EXPECT_TRUE(o.r.proc().shell_spawned);
  EXPECT_EQ(o.r.proc().exit_kind, ExitKind::kExited);
  EXPECT_EQ(o.watchdog.breaches(), 0u);
  for (const auto& rec : o.injector.records()) {
    if (rec.fired) {
      ASSERT_TRUE(rec.outcome.has_value())
          << inject::to_string(rec.fault.kind);
      EXPECT_NE(*rec.outcome, inject::Outcome::kBreach);
    }
  }
}

TEST(ObserveFaults, LockdownRacedByForkAndCow) {
  // Parent forks; both sides write a shared COW page while the child also
  // runs the self-injection. Dropped flushes around the fork boundary are
  // the nastiest case for cross-address-space TLB staleness — the
  // watchdog's pid-change audit must keep both processes coherent.
  const char* body = R"(
_start:
  movi r4, shared
  movi r5, 42
  store [r4], r5
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  mov r1, r0
  movi r0, SYS_WAITPID
  syscall
  mov r1, r0              ; child exit code (0 = saw 42)
  movi r0, SYS_EXIT
  syscall
child:
  movi r4, shared
  movi r5, 7
  store [r4], r5          ; COW break in the child
  movi r1, buf
  movi r2, payload
  movi r3, payload_end
  sub r3, r2
  call memcpy
  movi r5, buf
  callr r5                ; observe: detected, locked, continues
  movi r4, shared
  load r5, [r4]
  cmpi r5, 7
  jz child_ok
  movi r0, SYS_EXIT
  movi r1, 1
  syscall
child_ok:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.data
shared: .word 0
payload:
  movi r0, SYS_SPAWN_SHELL
  syscall
  ret
payload_end: .byte 0
.bss
buf: .space 256
)";
  inject::FaultSchedule s;
  s.faults.push_back({10, inject::FaultKind::kDroppedTlbFlush, 0});
  s.faults.push_back({40, inject::FaultKind::kDroppedTlbFlush, 0});
  s.faults.push_back({60, inject::FaultKind::kDroppedInvlpg, 0});
  ObserveRun o(body, s);
  o.run();

  EXPECT_TRUE(o.r.k->all_exited());
  EXPECT_EQ(o.r.proc().exit_code, 0u)
      << "COW isolation broke under dropped flushes";
  EXPECT_EQ(o.r.k->detections().size(), 1u);
  EXPECT_EQ(o.watchdog.breaches(), 0u);
  for (const auto& rec : o.injector.records()) {
    if (rec.fired) {
      ASSERT_TRUE(rec.outcome.has_value());
      EXPECT_NE(*rec.outcome, inject::Outcome::kBreach);
    }
  }
}

TEST(ObserveFaults, DegradationThenMprotectStaysCoherent) {
  // Split-OOM degradation (code-frame allocation fails, page locked
  // unsplit) followed by an mprotect whose invlpg is dropped by the
  // injector: the watchdog must find the stale writable D-TLB entry over
  // the now read-only degraded page and repair it — no resurrected split
  // state, no permanently stale TLB perms.
  const char* body = R"(
_start:
  movi r0, SYS_MMAP
  movi r1, 0
  movi r2, 8192
  movi r3, 3              ; R|W
  syscall
  mov r7, r0
  mov r4, r7
  addi r4, 4096
  movi r5, 1
  store [r4], r5          ; neighbor page: builds the second-level table
  movi r6, 0
pause:                    ; window for the test to drain physical frames
  addi r6, 1
  cmpi r6, 60
  jnz pause
  movi r5, 5
  store [r7], r5          ; materialize: only one frame left -> degrade
  movi r0, SYS_MPROTECT
  mov r1, r7
  movi r2, 4096
  movi r3, 1              ; PROT_R only; the invlpg here is dropped
  syscall
  load r6, [r7]           ; read via the (stale) D-TLB entry
spin:
  jmp spin
)";
  kernel::KernelConfig cfg;
  cfg.phys_frames = 256;
  testing::GuestRun r = testing::start_guest(
      body, ProtectionMode::kSplitAll, ResponseMode::kObserve, cfg);
  inject::FaultSchedule s;
  // Armed after the neighbor page's fill windows closed, so the next
  // invlpg the machine issues is the mprotect one.
  s.faults.push_back({30, inject::FaultKind::kDroppedInvlpg, 0});
  inject::FaultInjector injector(s);
  invariant::InvariantWatchdog watchdog;
  injector.attach(*r.k);
  watchdog.attach(*r.k, &injector);

  // Run into the pause loop, then drain RAM down to a single free frame.
  r.k->run(45);
  ASSERT_EQ(r.proc().exit_kind, ExitKind::kRunning);
  arch::PhysicalMemory& pm = r.k->phys();
  while (pm.frames_in_use() < cfg.phys_frames - 1) pm.alloc_frame();

  r.k->run(5'000);  // store -> degrade; mprotect; load; spin
  watchdog.finalize(*r.k);

  EXPECT_EQ(r.k->stats().split_oom_degradations, 1u)
      << "code-frame OOM did not take the graceful-degradation seam";
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kRunning) << "guest died";
  EXPECT_EQ(r.k->regs_of(r.proc()).r[6], 5u)
      << "read through the degraded page returned the wrong value";
  const auto& recs = injector.records();
  ASSERT_EQ(recs.size(), 1u);
  ASSERT_TRUE(recs[0].fired) << "mprotect invlpg never happened";
  ASSERT_TRUE(recs[0].outcome.has_value());
  EXPECT_NE(*recs[0].outcome, inject::Outcome::kBreach);
  // The stale writable mapping over the now read-only page was detected
  // and invalidated (I5), not left in place.
  EXPECT_GE(watchdog.violations(), 1u);
  EXPECT_GE(watchdog.recoveries(), 1u);
  EXPECT_EQ(watchdog.breaches(), 0u);
}

}  // namespace
}  // namespace sm

#endif  // SM_INVARIANT_ENABLED
