// SMP fault-model tests (DESIGN.md §16): the two IPI fault kinds and the
// watchdog's machine-wide invariants. drop-ipi makes the sender retry —
// bounded retries, then the shootdown parks as pending and opening a
// window over it is I7. ack-without-flush leaves a remote stale entry for
// the watchdog's cross-core sweep to find (I6). Both always end recovered
// or degraded, never silent and never a breach.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "arch/mmu.h"
#include "arch/page_table.h"
#include "arch/pte.h"
#include "arch/tlb.h"
#include "inject/fault_injector.h"
#include "inject/fault_schedule.h"
#include "invariant/watchdog.h"
#include "support/guest_runner.h"

namespace sm {
namespace {

using arch::u32;
using arch::u64;
using arch::vpn_of;
using core::ProtectionMode;
using core::ResponseMode;

const char* kSpinWithSplitPage = R"(
_start:
  movi r4, buf
  movi r5, 7
  store [r4], r5
  load r6, [r4]
spin:
  jmp spin
.bss
buf: .space 64
)";

// Same materialization, but exits — for runs that must complete.
const char* kExitWithSplitPage = R"(
_start:
  movi r4, buf
  movi r5, 7
  store [r4], r5
  load r6, [r4]
  movi r0, SYS_EXIT
  movi r1, 7
  syscall
.bss
buf: .space 64
)";

const char* kForkWorkers = R"(
_start:
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz worker
  movi r0, SYS_FORK
  syscall
  jmp worker
worker:
  movi r6, 30
wloop:
  movi r0, SYS_YIELD
  syscall
  movi r4, buf
  store [r4], r6
  load r5, [r4]
  addi r6, -1
  cmpi r6, 0
  jnz wloop
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 64
)";

kernel::KernelConfig cores_cfg(u32 n) {
  kernel::KernelConfig cfg;
  cfg.cores = n;
  return cfg;
}

inject::FaultSchedule ipi_faults(inject::FaultKind kind, u32 count) {
  inject::FaultSchedule s;
  for (u32 i = 0; i < count; ++i) s.faults.push_back({0, kind, 0});
  return s;
}

arch::TlbEntry make_entry(u32 vpn, u32 pfn, bool writable) {
  arch::TlbEntry e;
  e.vpn = vpn;
  e.pfn = pfn;
  e.user = true;
  e.writable = writable;
  e.valid = true;
  return e;
}

// Boots the spin guest on two cores with injector + watchdog attached,
// runs far enough to materialize the split page and arm the schedule,
// then plants a (coherent unless asked otherwise) translation for `buf`
// on the remote core so a shootdown has a real target.
struct SmpFaultRig {
  testing::GuestRun run;
  std::unique_ptr<inject::FaultInjector> injector;
  invariant::InvariantWatchdog watchdog;
  u32 buf = 0;
  u32 vpn = 0;
  u32 target = 0;

  explicit SmpFaultRig(inject::FaultSchedule schedule,
                       u32 stale_pfn_offset = 0, bool stale_writable = false) {
    run = testing::start_guest(kSpinWithSplitPage, ProtectionMode::kSplitAll,
                               ResponseMode::kBreak, cores_cfg(2));
    // Warm up WITHOUT the injector: work stealing migrates even a lone
    // process between cores, and the natural shootdowns that causes would
    // consume the armed IPI faults before the test's own invalidate.
    run.k->run(2'000);
    injector = std::make_unique<inject::FaultInjector>(std::move(schedule));
    injector->attach(*run.k);
    watchdog.attach(*run.k, injector.get());
    run.k->run(1);  // one spin step: arms the schedule, no protocol traffic
    const auto program =
        assembler::assemble(guest::program(kSpinWithSplitPage));
    buf = program.symbol("buf");
    vpn = vpn_of(buf);
    target = (run.k->active_core() + 1) % 2;
    arch::Mmu& remote = run.k->core_mmu(target);
    remote.set_cr3(proc().as->root());
    remote.dtlb().insert(make_entry(
        vpn, proc().as->pt().get(buf).pfn() + stale_pfn_offset,
        stale_writable));
  }

  kernel::Process& proc() { return run.proc(); }
  kernel::Kernel& k() { return *run.k; }
  arch::Tlb& remote_dtlb() { return run.k->core_mmu(target).dtlb(); }
};

TEST(SmpFault, DropIpiRetriesAndRecovers) {
  // One armed drop: the first send is lost, the retry lands — the guest
  // never sees it, the remote entry still dies before the restrict.
  SmpFaultRig rig(ipi_faults(inject::FaultKind::kDropIpi, 1));
  const u64 sends0 = rig.k().stats().ipi_sends;
  const u64 acks0 = rig.k().stats().ipi_acks;
  rig.k().invalidate_page(rig.proc(), rig.buf);

  EXPECT_FALSE(rig.remote_dtlb().contains(rig.vpn));
  EXPECT_TRUE(rig.k().pending_shootdowns().empty());
  EXPECT_EQ(rig.k().stats().ipi_sends, sends0 + 2);  // drop + retry
  EXPECT_EQ(rig.k().stats().ipi_acks, acks0 + 1);
  ASSERT_EQ(rig.injector->records().size(), 1u);
  EXPECT_TRUE(rig.injector->records()[0].fired);

  rig.watchdog.finalize(rig.k());
  EXPECT_EQ(rig.watchdog.breaches(), 0u);
  ASSERT_TRUE(rig.injector->records()[0].outcome.has_value());
  EXPECT_EQ(*rig.injector->records()[0].outcome, inject::Outcome::kRecovered);
}

TEST(SmpFault, DropIpiExhaustionParksPendingShootdownAndTripsI7) {
  // Three armed drops = the full retry budget: delivery fails outright,
  // the shootdown parks, and the stale remote entry survives — exactly
  // the state a window must not open over.
  SmpFaultRig rig(ipi_faults(inject::FaultKind::kDropIpi, 3));
  rig.k().invalidate_page(rig.proc(), rig.buf);

  ASSERT_EQ(rig.k().pending_shootdowns().size(), 1u);
  const kernel::Kernel::PendingShootdown& ps =
      rig.k().pending_shootdowns()[0];
  EXPECT_EQ(ps.vpn, rig.vpn);
  EXPECT_EQ(ps.root, rig.proc().as->root());
  EXPECT_EQ(ps.core_mask, u32{1} << rig.target);
  EXPECT_TRUE(rig.remote_dtlb().contains(rig.vpn));
  for (const auto& rec : rig.injector->records()) {
    EXPECT_TRUE(rec.fired);
  }

  // Simulate the window opening over the parked page: the watchdog must
  // flag I7 and repair by completing the invalidations directly.
  rig.proc().pending_split_vaddr = rig.buf;
  const u32 violations0 = rig.watchdog.violations();
  rig.watchdog.pre_step(rig.k(), rig.proc());
  EXPECT_GT(rig.watchdog.violations(), violations0);
  EXPECT_TRUE(rig.k().pending_shootdowns().empty());
  EXPECT_FALSE(rig.remote_dtlb().contains(rig.vpn))
      << "I7 repair left the stale remote translation alive";
  rig.proc().pending_split_vaddr.reset();

  rig.watchdog.finalize(rig.k());
  EXPECT_EQ(rig.watchdog.breaches(), 0u);
  for (const auto& rec : rig.injector->records()) {
    EXPECT_TRUE(rec.outcome.has_value()) << "fired fault left unclassified";
  }
}

TEST(SmpFault, AckWithoutFlushIsCaughtByRemoteSweepAsI6) {
  // The target acks but never flushes; plant the entry writable on the
  // wrong frame so the survivor genuinely disagrees with the pair state
  // (a read-only data-frame mapping would be legal and unflagged).
  SmpFaultRig rig(ipi_faults(inject::FaultKind::kAckNoFlush, 1),
                  /*stale_pfn_offset=*/1, /*stale_writable=*/true);
  const u64 acks0 = rig.k().stats().ipi_acks;
  rig.k().invalidate_page(rig.proc(), rig.buf);

  // Acked, so nothing parks — but the stale entry is still there.
  EXPECT_TRUE(rig.k().pending_shootdowns().empty());
  EXPECT_EQ(rig.k().stats().ipi_acks, acks0 + 1);
  ASSERT_EQ(rig.injector->records().size(), 1u);
  EXPECT_TRUE(rig.injector->records()[0].fired);

  // The PTE moves on (re-point at the data frame is the common restrict
  // follow-up); make the survivor observably stale, then audit.
  const bool was_stale = rig.remote_dtlb().contains(rig.vpn);
  EXPECT_TRUE(was_stale);
  const u32 violations0 = rig.watchdog.violations();
  rig.watchdog.finalize(rig.k());
  EXPECT_GT(rig.watchdog.violations(), violations0)
      << "remote sweep missed the unflushed stale entry";
  EXPECT_FALSE(rig.remote_dtlb().contains(rig.vpn));
  EXPECT_EQ(rig.watchdog.breaches(), 0u);
  ASSERT_TRUE(rig.injector->records()[0].outcome.has_value());
  EXPECT_EQ(*rig.injector->records()[0].outcome, inject::Outcome::kRecovered);
}

TEST(SmpFault, IpiFaultsArmButNeverFireOnOneCore) {
  // At cores=1 there are no IPIs to drop: the kinds arm, never fire, and
  // the guest completes untouched (the campaign reports them unfired).
  inject::FaultSchedule s;
  s.faults.push_back({0, inject::FaultKind::kDropIpi, 0});
  s.faults.push_back({0, inject::FaultKind::kAckNoFlush, 0});
  auto r = testing::start_guest(kExitWithSplitPage, ProtectionMode::kSplitAll,
                                ResponseMode::kBreak, cores_cfg(1));
  inject::FaultInjector injector(std::move(s));
  invariant::InvariantWatchdog watchdog;
  injector.attach(*r.k);
  watchdog.attach(*r.k, &injector);
  r.k->run(1'000'000);
  watchdog.finalize(*r.k);

  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.proc().exit_code, 7u);
  for (const auto& rec : injector.records()) {
    EXPECT_FALSE(rec.fired);
  }
  EXPECT_EQ(watchdog.breaches(), 0u);
  EXPECT_EQ(r.k->stats().ipi_sends, 0u);
}

TEST(SmpFault, GeneratedCampaignAtFourCoresHasZeroBreaches) {
  // A seeded mixed-kind schedule (including the IPI kinds) over a forking
  // 4-core workload: whatever fires must end classified, never a breach —
  // the robustness-campaign gate, at unit-test scale.
  const auto schedule = inject::FaultSchedule::generate(0x5317, 16, 20'000);
  auto r = testing::start_guest(kForkWorkers, ProtectionMode::kSplitAll,
                                ResponseMode::kBreak, cores_cfg(4));
  inject::FaultInjector injector(schedule);
  invariant::InvariantWatchdog watchdog;
  injector.attach(*r.k);
  watchdog.attach(*r.k, &injector);
  r.k->run(20'000'000);
  watchdog.finalize(*r.k);

  EXPECT_EQ(watchdog.breaches(), 0u);
  EXPECT_EQ(injector.outstanding(), 0u) << "a fired fault stayed silent";
  EXPECT_TRUE(r.k->pending_shootdowns().empty());
}

TEST(SmpFault, InjectedFourCoreRunIsDeterministic) {
  // Injection is a pure function of (schedule, simulated event stream):
  // two identical faulted 4-core runs end in byte-identical machines.
  auto once = [] {
    auto r = testing::start_guest(kForkWorkers, ProtectionMode::kSplitAll,
                                  ResponseMode::kBreak, cores_cfg(4));
    inject::FaultInjector injector(
        inject::FaultSchedule::generate(0x5317, 16, 20'000));
    invariant::InvariantWatchdog watchdog;
    injector.attach(*r.k);
    watchdog.attach(*r.k, &injector);
    r.k->run(20'000'000);
    watchdog.finalize(*r.k);
    std::ostringstream os;
    r.k->save(os);
    return os.str();
  };
  EXPECT_EQ(once(), once());
}

}  // namespace
}  // namespace sm
