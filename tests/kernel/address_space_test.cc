// Direct unit tests for AddressSpace (VMA bookkeeping, split-pair
// registry, teardown) and GuestMem (kernel-side views of split pages).
#include <gtest/gtest.h>

#include "kernel/address_space.h"
#include "kernel/guest_mem.h"

namespace sm::kernel {
namespace {

using arch::kPageSize;
using arch::PhysicalMemory;
using arch::Pte;

Vma make_vma(u32 start, u32 end, u32 prot = 3) {
  Vma v;
  v.start = start;
  v.end = end;
  v.prot = prot;
  v.name = "test";
  return v;
}

TEST(AddressSpaceUnit, VmaAddFindRemove) {
  PhysicalMemory pm(64);
  AddressSpace as(pm);
  as.add_vma(make_vma(0x10000, 0x14000));
  as.add_vma(make_vma(0x20000, 0x21000));
  EXPECT_NE(as.find_vma(0x10000), nullptr);
  EXPECT_NE(as.find_vma(0x13FFF), nullptr);
  EXPECT_EQ(as.find_vma(0x14000), nullptr);
  EXPECT_NE(as.find_vma(0x20000), nullptr);
}

TEST(AddressSpaceUnit, OverlappingVmaRejected) {
  PhysicalMemory pm(64);
  AddressSpace as(pm);
  as.add_vma(make_vma(0x10000, 0x14000));
  EXPECT_THROW(as.add_vma(make_vma(0x12000, 0x15000)),
               std::invalid_argument);
  EXPECT_THROW(as.add_vma(make_vma(0x0F000, 0x11000)),
               std::invalid_argument);
  // Adjacent is fine.
  EXPECT_NO_THROW(as.add_vma(make_vma(0x14000, 0x15000)));
}

TEST(AddressSpaceUnit, MisalignedVmaRejected) {
  PhysicalMemory pm(64);
  AddressSpace as(pm);
  EXPECT_THROW(as.add_vma(make_vma(0x10800, 0x14000)),
               std::invalid_argument);
  EXPECT_THROW(as.add_vma(make_vma(0x10000, 0x10000)),
               std::invalid_argument);
}

TEST(AddressSpaceUnit, RemoveRangeSplitsVmas) {
  PhysicalMemory pm(64);
  AddressSpace as(pm);
  as.add_vma(make_vma(0x10000, 0x18000));
  as.remove_range(0x12000, 0x14000);
  EXPECT_NE(as.find_vma(0x10000), nullptr);  // left piece
  EXPECT_EQ(as.find_vma(0x12000), nullptr);  // hole
  EXPECT_EQ(as.find_vma(0x13FFF), nullptr);
  const Vma* right = as.find_vma(0x14000);
  ASSERT_NE(right, nullptr);
  EXPECT_EQ(right->end, 0x18000u);
}

TEST(AddressSpaceUnit, RemoveRangeFreesMappedFrames) {
  PhysicalMemory pm(64);
  AddressSpace as(pm);
  as.add_vma(make_vma(0x10000, 0x12000));
  const u32 f = pm.alloc_frame();
  as.pt().set(0x10000, Pte::make(f, Pte::kPresent | Pte::kUser));
  const u32 used = pm.frames_in_use();
  as.remove_range(0x10000, 0x12000);
  EXPECT_EQ(pm.frames_in_use(), used - 1);
}

TEST(AddressSpaceUnit, FindMmapGapSkipsExistingVmas) {
  PhysicalMemory pm(64);
  AddressSpace as(pm);
  as.add_vma(make_vma(0x40000000, 0x40004000));
  const u32 gap = as.find_mmap_gap(0x2000);
  EXPECT_GE(gap, 0x40004000u);
  as.add_vma(make_vma(gap, gap + 0x2000));
  const u32 gap2 = as.find_mmap_gap(0x1000);
  EXPECT_GE(gap2, gap + 0x2000);
}

TEST(AddressSpaceUnit, SplitPairRegistryAndUnsplit) {
  PhysicalMemory pm(64);
  AddressSpace as(pm);
  as.add_vma(make_vma(0x10000, 0x11000));
  SplitPair pair{pm.alloc_frame(), pm.alloc_frame()};
  as.pt().set(0x10000, Pte::make(pair.code_frame,
                                 Pte::kPresent | Pte::kSplit));
  as.register_split(0x10, pair);
  ASSERT_NE(as.split_pair(0x10), nullptr);
  EXPECT_EQ(as.split_pair(0x10)->data_frame, pair.data_frame);
  EXPECT_EQ(as.split_pair(0x11), nullptr);

  // Observe mode locks the PTE onto the data frame, then unsplits.
  as.pt().set(0x10000,
              Pte::make(pair.data_frame, Pte::kPresent | Pte::kUser));
  const u32 used = pm.frames_in_use();
  as.unsplit(0x10, /*kept_frame=*/pair.data_frame);
  EXPECT_EQ(as.split_pair(0x10), nullptr);
  EXPECT_EQ(pm.frames_in_use(), used - 1);  // code frame released
  // Teardown releases the kept frame exactly once (no double free).
}

TEST(AddressSpaceUnit, DestroyFreesSplitPairsOnce) {
  PhysicalMemory pm(64);
  const u32 before = pm.frames_in_use();
  {
    AddressSpace as(pm);
    as.add_vma(make_vma(0x10000, 0x11000));
    SplitPair pair{pm.alloc_frame(), pm.alloc_frame()};
    as.pt().set(0x10000,
                Pte::make(pair.code_frame, Pte::kPresent | Pte::kSplit));
    as.register_split(0x10, pair);
    // destructor runs destroy()
  }
  EXPECT_EQ(pm.frames_in_use(), before);
}

TEST(AddressSpaceUnit, InitialPageBytesRespectsBackingWindow) {
  PhysicalMemory pm(64);
  AddressSpace as(pm);
  Vma v = make_vma(0x10000, 0x12000);
  auto backing = std::make_shared<std::vector<arch::u8>>();
  backing->resize(kPageSize + 10, 0xAA);
  (*backing)[0] = 0x11;
  (*backing)[kPageSize] = 0x22;
  v.backing = backing;
  as.add_vma(v);

  std::vector<arch::u8> page(kPageSize);
  as.initial_page_bytes(*as.find_vma(0x10000), 0x10000, page);
  EXPECT_EQ(page[0], 0x11);
  // Second page: first 10 bytes from backing, rest zero-filled.
  as.initial_page_bytes(*as.find_vma(0x11000), 0x11000, page);
  EXPECT_EQ(page[0], 0x22);
  EXPECT_EQ(page[10], 0x00);
}

TEST(GuestMemUnit, ViewsSelectTheRightFrame) {
  PhysicalMemory pm(64);
  AddressSpace as(pm);
  as.add_vma(make_vma(0x10000, 0x11000));
  SplitPair pair{pm.alloc_frame(), pm.alloc_frame()};
  pm.frame_bytes(pair.code_frame)[4] = 0xC0;
  pm.frame_bytes(pair.data_frame)[4] = 0xDA;
  as.pt().set(0x10000,
              Pte::make(pair.code_frame, Pte::kPresent | Pte::kSplit));
  as.register_split(0x10, pair);

  GuestMem gm(as);
  arch::u8 b = 0;
  ASSERT_TRUE(gm.read(0x10004, {&b, 1}, View::kData));
  EXPECT_EQ(b, 0xDA);
  ASSERT_TRUE(gm.read(0x10004, {&b, 1}, View::kCode));
  EXPECT_EQ(b, 0xC0);

  // kBoth writes hit both frames; kData only the data frame.
  const arch::u8 w = 0x77;
  ASSERT_TRUE(gm.write(0x10008, {&w, 1}, View::kBoth));
  EXPECT_EQ(pm.frame_bytes(pair.code_frame)[8], 0x77);
  EXPECT_EQ(pm.frame_bytes(pair.data_frame)[8], 0x77);
  const arch::u8 w2 = 0x55;
  ASSERT_TRUE(gm.write(0x10008, {&w2, 1}, View::kData));
  EXPECT_EQ(pm.frame_bytes(pair.code_frame)[8], 0x77);
  EXPECT_EQ(pm.frame_bytes(pair.data_frame)[8], 0x55);
}

TEST(GuestMemUnit, UnmappedAccessReturnsFalseAndWritesNothing) {
  PhysicalMemory pm(64);
  AddressSpace as(pm);
  as.add_vma(make_vma(0x10000, 0x11000));
  const u32 f = pm.alloc_frame();
  as.pt().set(0x10000, Pte::make(f, Pte::kPresent | Pte::kUser));

  GuestMem gm(as);
  // Range straddling into an unmapped page: nothing may be written.
  std::vector<arch::u8> data(16, 0xEE);
  EXPECT_FALSE(gm.write(0x10FF8, data));
  EXPECT_EQ(pm.frame_bytes(f)[kPageSize - 8], 0x00);
  std::vector<arch::u8> out(16);
  EXPECT_FALSE(gm.read(0x10FF8, out));
}

TEST(GuestMemUnit, ReadCstrStopsAtNulAndBounds) {
  PhysicalMemory pm(64);
  AddressSpace as(pm);
  as.add_vma(make_vma(0x10000, 0x11000));
  const u32 f = pm.alloc_frame();
  as.pt().set(0x10000, Pte::make(f, Pte::kPresent | Pte::kUser));
  auto bytes = pm.frame_bytes(f);
  bytes[0] = 'h';
  bytes[1] = 'i';
  bytes[2] = 0;

  GuestMem gm(as);
  const auto s = gm.read_cstr(0x10000);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, "hi");
  // Unterminated within max_len -> nullopt.
  bytes[2] = 'x';
  EXPECT_FALSE(gm.read_cstr(0x10000, 3).has_value());
}

TEST(GuestMemUnit, Write32ReadsBackLittleEndian) {
  PhysicalMemory pm(64);
  AddressSpace as(pm);
  as.add_vma(make_vma(0x10000, 0x11000));
  const u32 f = pm.alloc_frame();
  as.pt().set(0x10000, Pte::make(f, Pte::kPresent | Pte::kUser));
  GuestMem gm(as);
  ASSERT_TRUE(gm.write32(0x10010, 0xA1B2C3D4));
  EXPECT_EQ(pm.frame_bytes(f)[0x10], 0xD4);
  const auto v = gm.read32(0x10010);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 0xA1B2C3D4u);
}

}  // namespace
}  // namespace sm::kernel
