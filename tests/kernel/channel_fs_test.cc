// Unit tests for the host<->guest plumbing: Channel, Pipe, FileSystem, and
// the Sebek logging hook.
#include <gtest/gtest.h>

#include "core/sebek.h"
#include "kernel/channel.h"
#include "kernel/filesystem.h"
#include "support/guest_runner.h"

namespace sm::kernel {
namespace {

TEST(Channel, HostToGuestAndBack) {
  Channel c;
  c.host_write(std::string("abc"));
  EXPECT_EQ(c.guest_readable(), 3u);
  u8 buf[8];
  EXPECT_EQ(c.guest_read(std::span<u8>(buf, 2)), 2u);
  EXPECT_EQ(buf[0], 'a');
  EXPECT_EQ(c.guest_readable(), 1u);
  c.guest_write(std::span<const u8>(buf, 2));
  EXPECT_EQ(c.host_read_string(), "ab");
  EXPECT_EQ(c.bytes_to_host(), 2u);
}

TEST(Channel, EofOnlyAfterCloseAndDrain) {
  Channel c;
  c.host_write(std::string("x"));
  c.host_close();
  EXPECT_FALSE(c.guest_eof());  // one byte still buffered
  u8 b;
  c.guest_read(std::span<u8>(&b, 1));
  EXPECT_TRUE(c.guest_eof());
}

TEST(Channel, HostReadAllDrains) {
  Channel c;
  c.guest_write(std::vector<u8>{1, 2, 3});
  EXPECT_EQ(c.host_read_all().size(), 3u);
  EXPECT_TRUE(c.host_read_all().empty());
}

TEST(PipeUnit, BoundedCapacity) {
  Pipe p;
  p.add_reader();
  p.add_writer();
  std::vector<u8> big(Pipe::kCapacity + 100, 7);
  EXPECT_EQ(p.write(big), Pipe::kCapacity);
  EXPECT_EQ(p.writable(), 0u);
  std::vector<u8> out(1000);
  EXPECT_EQ(p.read(out), 1000u);
  EXPECT_EQ(p.writable(), 1000u);
}

TEST(PipeUnit, EofAfterLastWriterGone) {
  Pipe p;
  p.add_reader();
  p.add_writer();
  p.add_writer();  // a forked copy
  const u8 b = 1;
  p.write({&b, 1});
  p.remove_writer();
  EXPECT_FALSE(p.eof());  // one writer left, one byte buffered
  p.remove_writer();
  EXPECT_FALSE(p.eof());  // buffered byte still readable
  std::vector<u8> out(4);
  p.read(out);
  EXPECT_TRUE(p.eof());
}

TEST(PipeUnit, ReadClosedAfterLastReaderGone) {
  Pipe p;
  p.add_reader();
  p.add_writer();
  EXPECT_FALSE(p.read_closed());
  p.remove_reader();
  EXPECT_TRUE(p.read_closed());
}

TEST(FileSystemUnit, CreateTruncateLookup) {
  FileSystem fs;
  EXPECT_FALSE(fs.exists("f"));
  auto node = fs.create("f", false);
  node->bytes = {1, 2, 3};
  EXPECT_TRUE(fs.exists("f"));
  EXPECT_EQ(fs.lookup("f")->bytes.size(), 3u);
  fs.create("f", /*truncate=*/true);
  EXPECT_TRUE(fs.lookup("f")->bytes.empty());
  EXPECT_TRUE(fs.remove("f"));
  EXPECT_FALSE(fs.exists("f"));
  EXPECT_EQ(fs.lookup("f"), nullptr);
}

TEST(FileSystemUnit, PutText) {
  FileSystem fs;
  fs.put("greeting", std::string("hi"));
  ASSERT_NE(fs.lookup("greeting"), nullptr);
  EXPECT_EQ(fs.lookup("greeting")->bytes.size(), 2u);
}

TEST(SebekUnit, ActivationGating) {
  // Without a detection, an activation-gated logger stays silent; an
  // ungated one records everything.
  const char* body = R"(
_start:
  movi r0, SYS_SPAWN_SHELL
  syscall
  mov r1, r0
  movi r2, buf
  movi r3, 16
  movi r0, SYS_READ
  syscall
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 16
)";
  {
    auto r = sm::testing::start_guest(body,
                                      core::ProtectionMode::kNone);
    core::SebekLogger gated(/*activate_on_detection=*/true);
    gated.attach(*r.k);
    r.chan->host_write(std::string("whoami\n"));
    r.k->run(10'000'000);
    EXPECT_TRUE(gated.entries().empty());  // no detection ever fired
  }
  {
    auto r = sm::testing::start_guest(body,
                                      core::ProtectionMode::kNone);
    core::SebekLogger always(/*activate_on_detection=*/false);
    always.attach(*r.k);
    r.chan->host_write(std::string("whoami\n"));
    r.k->run(10'000'000);
    ASSERT_FALSE(always.entries().empty());
    EXPECT_NE(always.dump().find("whoami"), std::string::npos);
  }
}

TEST(SebekUnit, DumpEscapesNonPrintable) {
  core::SebekLogger logger(false);
  kernel::Kernel k;
  logger.attach(k);
  // Drive the hook directly through a process-less call is impossible;
  // instead verify the dump formatting with a synthetic entry via a guest.
  auto img = sm::testing::build_guest_image(R"(
_start:
  movi r0, SYS_SPAWN_SHELL
  syscall
  mov r1, r0
  movi r2, buf
  movi r3, 8
  movi r0, SYS_READ
  syscall
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 8
)");
  k.register_image(std::move(img));
  const auto pid = k.spawn("guest");
  auto chan = k.attach_channel(pid);
  // (split literal: "\x01b" would parse as the single hex escape 0x1B)
  chan->host_write(std::string("a\x01") + "b\n");
  k.run(10'000'000);
  const std::string dump = logger.dump();
  EXPECT_NE(dump.find("a.b\\n"), std::string::npos);
}

}  // namespace
}  // namespace sm::kernel
