// Dynamic/shared library loading under memory splitting (paper §4.3):
// libraries are detected at load/runtime, signature-verified, and their
// pages split like everything else.
#include <gtest/gtest.h>

#include "support/guest_runner.h"

namespace sm {
namespace {

using arch::u32;
using core::ProtectionMode;
using kernel::ExitKind;

image::Image make_library(const std::string& name, u32 base,
                          const std::string& body) {
  assembler::Layout layout;
  layout.text_base = base;
  layout.data_base = base + 0x10000;
  layout.bss_base = base + 0x20000;
  const auto program = assembler::assemble(body, layout);
  image::BuildOptions opts;
  opts.name = name;
  opts.entry_symbol = "lib_entry";
  return image::build_image(program, opts);
}

const char* kHostBody = R"(
_start:
  movi r0, SYS_DLOPEN
  movi r1, libname
  syscall
  cmpi r0, -1
  jz fail
  mov r5, r0
  callr r5                 ; call lib_entry (returns a value in r0)
  mov r1, r0
  movi r0, SYS_EXIT
  syscall
fail:
  movi r0, SYS_EXIT
  movi r1, 250
  syscall
.data
libname: .asciz "libmath"
)";

const char* kLibBody = R"(
lib_entry:
  ; compute 6*7 using the library's own data page
  movi r4, factor
  load r0, [r4]
  movi r2, 6
  mul r0, r2
  ret
.data
factor: .word 7
)";

class DlopenEngines : public ::testing::TestWithParam<ProtectionMode> {};
INSTANTIATE_TEST_SUITE_P(Engines, DlopenEngines,
                         ::testing::Values(ProtectionMode::kNone,
                                           ProtectionMode::kSplitAll,
                                           ProtectionMode::kHardwareNx,
                                           ProtectionMode::kNxPlusSplitMixed));

TEST_P(DlopenEngines, LibraryLoadsAndRuns) {
  testing::GuestRun r = testing::start_guest(kHostBody, GetParam());
  r.k->register_image(make_library("libmath", 0x40000000, kLibBody));
  r.k->run(10'000'000);
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.proc().exit_code, 42u);
}

TEST(Dlopen, LibraryPagesAreSplit) {
  testing::GuestRun r =
      testing::start_guest(kHostBody, ProtectionMode::kSplitAll);
  r.k->register_image(make_library("libmath", 0x40000000, kLibBody));
  r.k->run(10'000'000);
  ASSERT_TRUE(r.k->all_exited());
  // The library text page was I-TLB-loaded (it is split); its data page
  // was D-TLB-loaded.
  EXPECT_GE(r.k->stats().split_itlb_loads, 2u);  // host text + lib text
}

TEST(Dlopen, InjectionIntoLibraryDataIsFoiled) {
  // Inject into the LIBRARY's writable data page and jump there.
  const char* host = R"(
_start:
  movi r0, SYS_DLOPEN
  movi r1, libname
  syscall
  cmpi r0, -1
  jz fail
  ; write shellcode into the library's data area (base + 0x10000)
  movi r1, 0x40010000
  movi r2, payload
  movi r3, payload_end
  sub r3, r2
  call memcpy
  movi r5, 0x40010000
  jmpr r5
fail:
  movi r0, SYS_EXIT
  movi r1, 250
  syscall
.data
libname: .asciz "libmath"
payload:
  movi r0, SYS_SPAWN_SHELL
  syscall
payload_end: .byte 0
)";
  testing::GuestRun r = testing::start_guest(host, ProtectionMode::kSplitAll);
  r.k->register_image(make_library("libmath", 0x40000000, kLibBody));
  r.k->run(10'000'000);
  EXPECT_FALSE(r.proc().shell_spawned);
  EXPECT_EQ(r.k->detections().size(), 1u);
}

TEST(Dlopen, DoubleLoadIsRejected) {
  const char* host = R"(
_start:
  movi r0, SYS_DLOPEN
  movi r1, libname
  syscall
  mov r5, r0
  movi r0, SYS_DLOPEN
  movi r1, libname
  syscall
  cmpi r0, -1             ; second load: address-range collision
  jz ok
  movi r0, SYS_EXIT
  movi r1, 1
  syscall
ok:
  cmpi r5, -1
  jz first_failed
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
first_failed:
  movi r0, SYS_EXIT
  movi r1, 2
  syscall
.data
libname: .asciz "libmath"
)";
  testing::GuestRun r = testing::start_guest(host, ProtectionMode::kSplitAll);
  r.k->register_image(make_library("libmath", 0x40000000, kLibBody));
  r.k->run(10'000'000);
  EXPECT_EQ(r.proc().exit_code, 0u);
}

TEST(Dlopen, UnknownLibraryReturnsError) {
  testing::GuestRun r = testing::start_guest(R"(
_start:
  movi r0, SYS_DLOPEN
  movi r1, libname
  syscall
  cmpi r0, -1
  jz ok
  movi r0, SYS_EXIT
  movi r1, 1
  syscall
ok:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.data
libname: .asciz "nosuchlib"
)",
                                              ProtectionMode::kNone);
  r.k->run(10'000'000);
  EXPECT_EQ(r.proc().exit_code, 0u);
}

TEST(Dlopen, SignatureGateRefusesTamperedLibrary) {
  kernel::KernelConfig cfg;
  cfg.require_signatures = true;
  cfg.signing_key = {7, 7, 7};
  kernel::Kernel k(cfg);
  k.set_engine(core::make_engine(ProtectionMode::kSplitAll));
  image::Image host = testing::build_guest_image(kHostBody);
  host.sign(cfg.signing_key);
  k.register_image(std::move(host));
  image::Image lib = make_library("libmath", 0x40000000, kLibBody);
  lib.sign(cfg.signing_key);
  lib.segments[0].bytes[2] ^= 0x1;  // tamper post-signing
  k.register_image(std::move(lib));
  const auto pid = k.spawn("guest");
  k.run(10'000'000);
  EXPECT_EQ(k.process(pid)->exit_code, 250u);  // dlopen returned -1
}

}  // namespace
}  // namespace sm
