// fd-table allocation: lowest-free-slot semantics must survive heavy
// open/close churn, and the cost must stay O(log n) per allocation — the
// old front-to-back scan went quadratic exactly in the server workload's
// fd-churn pattern.
#include <gtest/gtest.h>

#include "support/guest_runner.h"

namespace sm {
namespace {

using core::ProtectionMode;
using testing::run_guest;

// Open 1000 fds (500 pipes), close every one, reopen 1000. The first
// reopened pipe must land back in the lowest holes (fds 0 and 2 — fd 1 is
// the console), and the allocator must do O(1) probe work per allocation
// rather than rescanning the low table.
TEST(FdAlloc, ChurnReusesLowestSlotInConstantProbes) {
  const char* body = R"(
_start:
  movi r5, 500
open1:
  movi r0, SYS_PIPE
  movi r1, fds
  syscall
  addi r5, -1
  cmpi r5, 0
  jnz open1
  ; close everything we opened: fd 0 plus fds 2..1001
  movi r0, SYS_CLOSE
  movi r1, 0
  syscall
  movi r5, 2
close1:
  movi r0, SYS_CLOSE
  mov r1, r5
  syscall
  addi r5, 1
  cmpi r5, 1002
  jb close1
  ; the first reopened pipe must reuse the lowest holes: rd=0, wr=2
  movi r0, SYS_PIPE
  movi r1, fds
  syscall
  movi r4, fds
  load r1, [r4]
  cmpi r1, 0
  jnz bad
  load r1, [r4+4]
  cmpi r1, 2
  jnz bad
  movi r5, 499
open2:
  movi r0, SYS_PIPE
  movi r1, fds
  syscall
  addi r5, -1
  cmpi r5, 0
  jnz open2
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
bad:
  movi r0, SYS_EXIT
  movi r1, 9
  syscall
.bss
fds: .space 8
)";
  auto r = run_guest(body, ProtectionMode::kNone);
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.proc().exit_code, 0u);
  // 2000 allocations total. Round one starts with a single free slot (fd
  // 0) and then appends; round two pops exactly one valid hole per
  // allocation. Anything near-quadratic (the old scan would examine
  // ~500k slots here) fails this by orders of magnitude.
  EXPECT_LE(r.proc().fd_alloc_probes, 1100u);
  EXPECT_GE(r.proc().fd_alloc_probes, 1000u);  // the holes really got reused
}

// Fork must duplicate the parent's free-slot bookkeeping: holes punched
// before the fork are reused identically (lowest first) on both sides.
TEST(FdAlloc, ForkInheritsFreeSlots) {
  const char* body = R"(
_start:
  movi r0, SYS_PIPE       ; fd 0 is the channel: occupies fds 2, 3
  movi r1, fds
  syscall
  movi r0, SYS_PIPE       ; fds 4, 5
  movi r1, fds2
  syscall
  movi r0, SYS_CLOSE      ; punch a hole at 3
  movi r1, 3
  syscall
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  mov r5, r0
  movi r0, SYS_PIPE       ; parent: must get 3 (the hole) then 6
  movi r1, fds2
  syscall
  movi r0, SYS_WAITPID
  mov r1, r5
  syscall
  mov r5, r0              ; child's verdict
  movi r4, fds2
  load r1, [r4]
  cmpi r1, 3
  jnz bad
  load r1, [r4+4]
  cmpi r1, 6
  jnz bad
  mov r1, r5
  movi r0, SYS_EXIT
  syscall
child:
  movi r0, SYS_PIPE       ; child: same holes, same answer
  movi r1, fds2
  syscall
  movi r4, fds2
  load r1, [r4]
  cmpi r1, 3
  jnz bad
  load r1, [r4+4]
  cmpi r1, 6
  jnz bad
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
bad:
  movi r0, SYS_EXIT
  movi r1, 9
  syscall
.bss
fds: .space 8
fds2: .space 8
)";
  auto r = run_guest(body, ProtectionMode::kNone);
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.proc().exit_code, 0u);
}

}  // namespace
}  // namespace sm
