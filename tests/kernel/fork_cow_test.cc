// fork(), copy-on-write, waitpid and exec — the kernel machinery the
// paper's §5.4 modifications (COW + demand paging under splitting) rely on.
#include <gtest/gtest.h>

#include "support/guest_runner.h"

namespace sm {
namespace {

using core::ProtectionMode;
using kernel::ExitKind;
using testing::run_guest;

class ForkBothEngines : public ::testing::TestWithParam<ProtectionMode> {};

INSTANTIATE_TEST_SUITE_P(Engines, ForkBothEngines,
                         ::testing::Values(ProtectionMode::kNone,
                                           ProtectionMode::kSplitAll));

TEST_P(ForkBothEngines, ChildSeesZeroParentSeesPid) {
  const char* body = R"(
_start:
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  mov r1, r0
  movi r0, SYS_WAITPID
  syscall                 ; r0 = child's exit code
  addi r0, 100
  mov r1, r0
  movi r0, SYS_EXIT
  syscall
child:
  movi r0, SYS_EXIT
  movi r1, 7
  syscall
)";
  auto r = run_guest(body, GetParam());
  EXPECT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.proc().exit_code, 107u);  // 100 + child's 7
}

TEST_P(ForkBothEngines, CowIsolatesWrites) {
  // Parent writes 1 to a global AFTER forking; the child must still see
  // the original 42 (copy-on-write isolation), and vice versa.
  const char* body = R"(
_start:
  movi r4, shared
  movi r5, 42
  store [r4], r5
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  ; parent: overwrite, then wait for the child's verdict
  movi r4, shared
  movi r5, 1
  store [r4], r5
  mov r1, r0
  movi r0, SYS_WAITPID
  syscall
  mov r1, r0              ; child exit code (0 = saw 42)
  movi r0, SYS_EXIT
  syscall
child:
  movi r0, SYS_YIELD      ; let the parent write first
  syscall
  movi r0, SYS_YIELD
  syscall
  movi r4, shared
  load r5, [r4]
  cmpi r5, 42
  jz child_ok
  movi r0, SYS_EXIT
  movi r1, 1
  syscall
child_ok:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.data
shared: .word 0
)";
  auto r = run_guest(body, GetParam());
  EXPECT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.proc().exit_code, 0u) << "child observed the parent's write";
}

TEST_P(ForkBothEngines, GrandchildrenWork) {
  const char* body = R"(
_start:
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  mov r1, r0
  movi r0, SYS_WAITPID
  syscall
  mov r1, r0
  addi r1, 1
  movi r0, SYS_EXIT
  syscall
child:
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz grandchild
  mov r1, r0
  movi r0, SYS_WAITPID
  syscall
  mov r1, r0
  addi r1, 1
  movi r0, SYS_EXIT
  syscall
grandchild:
  movi r0, SYS_EXIT
  movi r1, 40
  syscall
)";
  auto r = run_guest(body, GetParam());
  EXPECT_EQ(r.proc().exit_code, 42u);
}

TEST_P(ForkBothEngines, NoFrameLeaksAcrossForkExit) {
  const char* body = R"(
_start:
  movi r5, 5
loop:
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  mov r1, r0
  push r5
  movi r0, SYS_WAITPID
  syscall
  pop r5
  addi r5, -1
  cmpi r5, 0
  jnz loop
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
child:
  ; touch some memory so the child owns pages of its own
  movi r4, buf
  movi r5, 99
  store [r4], r5
  store [r4+4096], r5
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 8192
)";
  auto r = run_guest(body, GetParam());
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.k->phys().frames_in_use(), 0u);
}

TEST_P(ForkBothEngines, ExecReplacesTheImage) {
  const char* body = R"(
_start:
  movi r0, SYS_EXEC
  movi r1, path
  syscall
  ; only reached on failure
  movi r0, SYS_EXIT
  movi r1, 1
  syscall
.data
path: .asciz "other"
)";
  testing::GuestRun r = testing::start_guest(body, GetParam());
  const auto other = assembler::assemble(guest::program(R"(
_start:
  movi r1, msg
  call print
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.data
msg: .asciz "exec'd\n"
)"));
  image::BuildOptions opts;
  opts.name = "other";
  r.k->register_image(image::build_image(other, opts));
  r.k->run(10'000'000);
  EXPECT_EQ(r.proc().exit_code, 0u);
  EXPECT_EQ(r.console(), "exec'd\n");
}

TEST(ForkCow, SharedSplitPairsAreCopiedOnWrite) {
  // Under split memory, a COW'd split page must duplicate BOTH frames.
  const char* body = R"(
_start:
  movi r4, shared
  movi r5, 42
  store [r4], r5
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  mov r1, r0
  movi r0, SYS_WAITPID
  syscall
  movi r4, shared
  load r1, [r4]           ; must still be 42
  movi r0, SYS_EXIT
  syscall
child:
  movi r4, shared
  movi r5, 9
  store [r4], r5          ; COW duplication of the split pair
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.data
shared: .word 0
)";
  auto r = run_guest(body, ProtectionMode::kSplitAll);
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.proc().exit_code, 42u);
  EXPECT_GE(r.k->stats().cow_copies, 1u);
  EXPECT_EQ(r.k->phys().frames_in_use(), 0u);
}

TEST(ForkCow, ReadOnlySharingAvoidsCopies) {
  // A child that only READS shared memory never triggers a COW copy of
  // those pages.
  const char* body = R"(
_start:
  movi r4, shared
  movi r5, 5
  store [r4], r5
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  mov r1, r0
  movi r0, SYS_WAITPID
  syscall
  mov r1, r0
  movi r0, SYS_EXIT
  syscall
child:
  movi r4, shared
  load r1, [r4]
  movi r0, SYS_EXIT
  syscall
.data
shared: .word 0
)";
  auto r = run_guest(body, ProtectionMode::kNone);
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.proc().exit_code, 5u);
  // Stack pages COW (the child pushes/pops), but `shared`'s data page
  // must not have been copied: allow at most the stack copies.
  EXPECT_LE(r.k->stats().cow_copies, 2u);
}

}  // namespace
}  // namespace sm
