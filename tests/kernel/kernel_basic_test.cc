// End-to-end kernel smoke tests: load, run, syscalls, console output —
// under both the unprotected baseline and full memory splitting (the
// transparency requirement: a benign program must behave identically).
#include <gtest/gtest.h>

#include "support/guest_runner.h"

namespace sm {
namespace {

using core::ProtectionMode;
using kernel::ExitKind;
using testing::run_guest;

const char* kHello = R"(
_start:
  movi r1, msg
  call print
  movi r0, SYS_EXIT
  movi r1, 42
  syscall
.data
msg: .asciz "hello, split world\n"
)";

class HelloBothModes
    : public ::testing::TestWithParam<ProtectionMode> {};

TEST_P(HelloBothModes, PrintsAndExits) {
  auto r = run_guest(kHello, GetParam());
  EXPECT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kExited);
  EXPECT_EQ(r.proc().exit_code, 42u);
  EXPECT_EQ(r.console(), "hello, split world\n");
}

INSTANTIATE_TEST_SUITE_P(AllEngines, HelloBothModes,
                         ::testing::Values(ProtectionMode::kNone,
                                           ProtectionMode::kSplitAll,
                                           ProtectionMode::kHardwareNx,
                                           ProtectionMode::kNxPlusSplitMixed));

TEST(KernelBasic, ArithmeticAndMemoryMatchAcrossEngines) {
  const char* body = R"(
_start:
  movi r1, 0          ; sum
  movi r2, 1          ; i
loop:
  add r1, r2
  addi r2, 1
  cmpi r2, 101
  jnz loop
  movi r3, table
  store [r3], r1
  load r4, [r3]
  movi r0, SYS_EXIT
  mov r1, r4
  syscall
.bss
table: .space 64
)";
  auto plain = run_guest(body, ProtectionMode::kNone);
  auto split = run_guest(body, ProtectionMode::kSplitAll);
  EXPECT_EQ(plain.proc().exit_code, 5050u);
  EXPECT_EQ(split.proc().exit_code, 5050u);
}

TEST(KernelBasic, SplitModeIsSlowerButCorrect) {
  const char* body = R"(
_start:
  movi r1, 0
  movi r2, 0
loop:
  add r1, r2
  addi r2, 1
  cmpi r2, 5000
  jnz loop
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
)";
  auto plain = run_guest(body, ProtectionMode::kNone);
  auto split = run_guest(body, ProtectionMode::kSplitAll);
  EXPECT_EQ(plain.proc().exit_kind, ExitKind::kExited);
  EXPECT_EQ(split.proc().exit_kind, ExitKind::kExited);
  EXPECT_GT(split.k->stats().cycles, plain.k->stats().cycles);
  // Same instruction stream.
  EXPECT_EQ(plain.k->stats().instructions, split.k->stats().instructions);
}

TEST(KernelBasic, SegfaultOnWildAccess) {
  const char* body = R"(
_start:
  movi r1, 0x00000010
  load r2, [r1]
  movi r0, SYS_EXIT
  syscall
)";
  auto r = run_guest(body, ProtectionMode::kNone);
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kKilledSigsegv);
}

TEST(KernelBasic, FramesAreReclaimedOnExit) {
  const char* body = R"(
_start:
  movi r1, buf
  movi r2, 0xAB
  movi r3, 8192
  call memset
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 8192
)";
  for (const auto mode :
       {ProtectionMode::kNone, ProtectionMode::kSplitAll}) {
    auto r = run_guest(body, mode);
    ASSERT_EQ(r.proc().exit_kind, ExitKind::kExited);
    // Only the kernel's own structures may remain: nothing, since the
    // address space is torn down on exit.
    EXPECT_EQ(r.k->phys().frames_in_use(), 0u) << core::to_string(mode);
  }
}

TEST(KernelBasic, ChannelEcho) {
  const char* body = R"(
_start:
  movi r1, FD_NET
  movi r2, buf
  movi r3, 64
  call read_line
  movi r1, FD_NET
  movi r2, buf
  call print_fd
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 64
)";
  auto r = testing::start_guest(body, ProtectionMode::kSplitAll);
  r.k->run(1'000'000);  // guest blocks on read
  r.chan->host_write(std::string("ping\n"));
  r.k->run(10'000'000);
  EXPECT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.chan->host_read_string(), "ping");
}

}  // namespace
}  // namespace sm
