// Memory-management syscalls: brk, mmap/munmap, mprotect, demand paging —
// including the W+X mmap path that creates mixed pages (paper §2: "the
// combination of write and execute accesses leads to mixed pages").
#include <gtest/gtest.h>

#include "support/guest_runner.h"

namespace sm {
namespace {

using arch::u32;

using core::ProtectionMode;
using kernel::ExitKind;
using testing::run_guest;

class MmBothEngines : public ::testing::TestWithParam<ProtectionMode> {};
INSTANTIATE_TEST_SUITE_P(Engines, MmBothEngines,
                         ::testing::Values(ProtectionMode::kNone,
                                           ProtectionMode::kSplitAll,
                                           ProtectionMode::kHardwareNx));

TEST_P(MmBothEngines, BrkGrowsTheHeap) {
  const char* body = R"(
_start:
  movi r0, SYS_BRK
  movi r1, 0
  syscall                 ; r0 = current break
  mov r5, r0
  mov r1, r5
  movi r2, 8192
  add r1, r2
  movi r0, SYS_BRK
  syscall                 ; extend by 8 KiB
  ; write at both ends of the new region
  movi r2, 123
  store [r5], r2
  store [r5+8188], r2
  load r1, [r5+8188]
  movi r0, SYS_EXIT
  syscall
)";
  auto r = run_guest(body, GetParam());
  EXPECT_EQ(r.proc().exit_code, 123u);
}

TEST_P(MmBothEngines, MmapReadWrite) {
  const char* body = R"(
_start:
  movi r0, SYS_MMAP
  movi r1, 0
  movi r2, 16384
  movi r3, 3              ; PROT_R|PROT_W
  syscall
  mov r5, r0
  movi r2, 77
  store [r5], r2
  store [r5+12288], r2
  load r1, [r5+12288]
  movi r0, SYS_EXIT
  syscall
)";
  auto r = run_guest(body, GetParam());
  EXPECT_EQ(r.proc().exit_code, 77u);
}

TEST_P(MmBothEngines, MunmapUnmapsAndFrees) {
  const char* body = R"(
_start:
  movi r0, SYS_MMAP
  movi r1, 0
  movi r2, 4096
  movi r3, 3
  syscall
  mov r5, r0
  movi r2, 1
  store [r5], r2
  movi r0, SYS_MUNMAP
  mov r1, r5
  movi r2, 4096
  syscall
  load r2, [r5]           ; must fault: SIGSEGV
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
)";
  auto r = run_guest(body, GetParam());
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kKilledSigsegv);
  EXPECT_EQ(r.k->phys().frames_in_use(), 0u);
}

TEST(Mm, MprotectRevokesWrite) {
  const char* body = R"(
_start:
  movi r0, SYS_MMAP
  movi r1, 0
  movi r2, 4096
  movi r3, 3
  syscall
  mov r5, r0
  movi r2, 5
  store [r5], r2          ; writable: ok
  movi r0, SYS_MPROTECT
  mov r1, r5
  movi r2, 4096
  movi r3, 1              ; PROT_R only
  syscall
  movi r2, 6
  store [r5], r2          ; must SIGSEGV
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
)";
  auto r = run_guest(body, ProtectionMode::kNone);
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kKilledSigsegv);
}

TEST(Mm, WxMmapIsExecutableUnderNxButSplitUnderCombined) {
  // Writing code into a W+X mapping and jumping to it: allowed by NX
  // (mixed page!), foiled by the combined NX+split engine.
  const char* body = R"(
_start:
  movi r0, SYS_MMAP
  movi r1, 0
  movi r2, 4096
  movi r3, 7              ; R|W|X: a mixed page
  syscall
  mov r5, r0
  ; copy payload into it
  mov r1, r5
  movi r2, payload
  movi r3, payload_end
  sub r3, r2
  call memcpy
  callr r5
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.data
payload:
  movi r0, SYS_SPAWN_SHELL
  syscall
  ret
payload_end: .byte 0
)";
  auto nx = run_guest(body, ProtectionMode::kHardwareNx);
  EXPECT_TRUE(nx.proc().shell_spawned);  // the NX gap

  auto combined = run_guest(body, ProtectionMode::kNxPlusSplitMixed);
  EXPECT_FALSE(combined.proc().shell_spawned);
  EXPECT_EQ(combined.k->detections().size(), 1u);

  auto split = run_guest(body, ProtectionMode::kSplitAll);
  EXPECT_FALSE(split.proc().shell_spawned);
}

TEST(Mm, NxBlocksStackExecutionButAllowsData) {
  const char* body = R"(
_start:
  ; read/write the stack: fine
  movi r2, 11
  store [sp-8], r2
  load r1, [sp-8]
  ; execute from the stack: NX kills us
  mov r5, sp
  movi r2, 512
  sub r5, r2
  jmpr r5
)";
  auto r = run_guest(body, ProtectionMode::kHardwareNx);
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kKilledSigsegv);
  ASSERT_EQ(r.k->detections().size(), 1u);
  EXPECT_EQ(r.k->detections()[0].mode, "nx");
}

TEST(Mm, DemandPagingOnlyMaterializesTouchedPages) {
  // A 1 MiB bss of which only 2 pages are touched: only those (plus code,
  // data, stack) may consume frames.
  const char* body = R"(
_start:
  movi r4, big
  movi r5, 1
  store [r4], r5
  store [r4+524288], r5
  movi r0, SYS_TIME
  syscall
  jmp spin
spin:
  jmp spin
.bss
big: .space 1048576
)";
  testing::GuestRun r = testing::start_guest(body, ProtectionMode::kNone);
  r.k->run(1'000);
  // code+data+2 bss+stack + page tables: well under 32 frames.
  EXPECT_LT(r.k->phys().frames_in_use(), 32u);
  EXPECT_GE(r.k->stats().demand_pages, 3u);
}

TEST(Mm, SplitDoublesFramesForTouchedPages) {
  const char* body = R"(
_start:
  movi r4, buf
  movi r5, 1
  store [r4], r5
  store [r4+4096], r5
  store [r4+8192], r5
  movi r0, SYS_TIME
  syscall
  jmp spin
spin:
  jmp spin
.bss
buf: .space 16384
)";
  testing::GuestRun plain = testing::start_guest(body, ProtectionMode::kNone);
  plain.k->run(1'000);
  testing::GuestRun split =
      testing::start_guest(body, ProtectionMode::kSplitAll);
  split.k->run(1'000);
  // "the memory usage of an application is effectively doubled" for split
  // pages (paper §5.1) — modulo the shared page-table frames.
  const u32 p = plain.k->phys().frames_in_use();
  const u32 s = split.k->phys().frames_in_use();
  EXPECT_GT(s, p + 3);
  EXPECT_LE(s, 2 * p);
}

TEST(Mm, OutOfPhysicalMemoryIsReportedNotUB) {
  kernel::KernelConfig cfg;
  cfg.phys_frames = 24;  // tiny machine
  const char* body = R"(
_start:
  movi r4, big
  movi r5, 0
touch:
  store [r4], r5
  addi r4, 4096
  addi r5, 1
  cmpi r5, 64
  jnz touch
  movi r0, SYS_EXIT
  syscall
.bss
big: .space 262144
)";
  testing::GuestRun r =
      testing::start_guest(body, ProtectionMode::kSplitAll,
                           core::ResponseMode::kBreak, cfg);
  EXPECT_THROW(r.k->run(10'000'000), arch::OutOfMemoryError);
}

}  // namespace
}  // namespace sm
