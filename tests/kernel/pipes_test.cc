// Pipes, blocking I/O, and the scheduler interactions that drive the
// paper's context-switch stress results.
#include <gtest/gtest.h>

#include "support/guest_runner.h"

namespace sm {
namespace {

using core::ProtectionMode;
using testing::run_guest;
using testing::run_guest_1core;

TEST(Pipes, SingleProcessRoundTrip) {
  const char* body = R"(
_start:
  movi r0, SYS_PIPE
  movi r1, fds
  syscall
  movi r0, SYS_WRITE
  movi r4, fds
  load r1, [r4+4]
  movi r2, msg
  movi r3, 5
  syscall
  movi r0, SYS_READ
  movi r4, fds
  load r1, [r4]
  movi r2, buf
  movi r3, 5
  syscall
  mov r5, r0              ; bytes read
  movi r4, buf
  loadb r1, [r4]
  cmpi r1, 'h'
  jnz bad
  mov r1, r5
  movi r0, SYS_EXIT
  syscall
bad:
  movi r0, SYS_EXIT
  movi r1, 99
  syscall
.data
msg: .asciz "hello"
.bss
fds: .space 8
buf: .space 8
)";
  auto r = run_guest(body, ProtectionMode::kSplitAll);
  EXPECT_EQ(r.proc().exit_code, 5u);
}

TEST(Pipes, PingPongForcesContextSwitches) {
  const char* body = R"(
.equ N, 50
_start:
  movi r0, SYS_PIPE
  movi r1, fds1
  syscall
  movi r0, SYS_PIPE
  movi r1, fds2
  syscall
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  mov r5, r0
  movi r4, N
ploop:
  push r4
  movi r0, SYS_WRITE
  movi r4, fds1
  load r1, [r4+4]
  movi r2, tok
  movi r3, 4
  syscall
  movi r0, SYS_READ
  movi r4, fds2
  load r1, [r4]
  movi r2, tok
  movi r3, 4
  syscall
  pop r4
  addi r4, -1
  cmpi r4, 0
  jnz ploop
  mov r1, r5
  movi r0, SYS_WAITPID
  syscall
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
child:
  movi r4, N
cloop:
  push r4
  movi r0, SYS_READ
  movi r4, fds1
  load r1, [r4]
  movi r2, tok2
  movi r3, 4
  syscall
  movi r0, SYS_WRITE
  movi r4, fds2
  load r1, [r4+4]
  movi r2, tok2
  movi r3, 4
  syscall
  pop r4
  addi r4, -1
  cmpi r4, 0
  jnz cloop
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.data
tok:  .word 1
tok2: .word 0
.bss
fds1: .space 8
fds2: .space 8
)";
  auto plain = run_guest_1core(body, ProtectionMode::kNone);
  ASSERT_TRUE(plain.k->all_exited());
  // 50 round trips = at least ~100 context switches.
  EXPECT_GE(plain.k->stats().context_switches, 100u);

  auto split = run_guest_1core(body, ProtectionMode::kSplitAll);
  ASSERT_TRUE(split.k->all_exited());
  // The paper's central performance claim: every switch costs the split
  // system TLB refills through page faults.
  EXPECT_GT(split.k->stats().split_dtlb_loads, 100u);
  EXPECT_GT(split.k->stats().cycles, plain.k->stats().cycles * 3 / 2);
}

TEST(Pipes, WriterBlocksWhenFull) {
  // Write 70000 bytes into a 65536-byte pipe: the writer must block until
  // the reader drains; the reader consumes until EOF (the writer's exit
  // releases the last write end).
  const char* body = R"(
_start:
  movi r0, SYS_PIPE
  movi r1, fds
  syscall
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz reader
  ; writer: exactly 70000 bytes, retrying partial writes
  movi r0, SYS_CLOSE      ; drop our read end
  movi r4, fds
  load r1, [r4]
  syscall
  movi r5, 70000
wloop:
  mov r3, r5
  cmpi r3, 1000
  jb wsize
  movi r3, 1000
wsize:
  push r5
  movi r0, SYS_WRITE
  movi r4, fds
  load r1, [r4+4]
  movi r2, block
  syscall
  mov r3, r0
  pop r5
  sub r5, r3
  cmpi r5, 0
  jnz wloop
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
reader:
  movi r0, SYS_CLOSE      ; drop our write end
  movi r4, fds
  load r1, [r4+4]
  syscall
  movi r5, 0              ; total
rloop:
  push r5
  movi r0, SYS_READ
  movi r4, fds
  load r1, [r4]
  movi r2, block
  movi r3, 1000
  syscall
  mov r3, r0
  pop r5
  cmpi r3, 0
  jz rdone                ; EOF
  add r5, r3
  jmp rloop
rdone:
  movi r2, 1000
  div r5, r2
  mov r1, r5              ; 70
  movi r0, SYS_EXIT
  syscall
.bss
fds: .space 8
block: .space 1000
)";
  auto r = run_guest(body, ProtectionMode::kNone);
  ASSERT_TRUE(r.k->all_exited());
  for (const auto& proc : r.k->processes()) {
    EXPECT_EQ(proc->exit_kind, kernel::ExitKind::kExited);
    if (proc->pid != r.pid) {
      EXPECT_EQ(proc->exit_code, 70u);
    }
  }
}

TEST(Pipes, EofAfterWriterCloses) {
  const char* body = R"(
_start:
  movi r0, SYS_PIPE
  movi r1, fds
  syscall
  movi r0, SYS_WRITE
  movi r4, fds
  load r1, [r4+4]
  movi r2, fds            ; any 4 bytes
  movi r3, 4
  syscall
  movi r0, SYS_CLOSE
  movi r4, fds
  load r1, [r4+4]
  syscall
  ; drain the 4 bytes, then the next read returns 0 (EOF)
  movi r0, SYS_READ
  movi r4, fds
  load r1, [r4]
  movi r2, buf
  movi r3, 16
  syscall
  mov r5, r0
  movi r0, SYS_READ
  movi r4, fds
  load r1, [r4]
  movi r2, buf
  movi r3, 16
  syscall
  add r5, r0              ; 4 + 0
  mov r1, r5
  movi r0, SYS_EXIT
  syscall
.bss
fds: .space 8
buf: .space 16
)";
  auto r = run_guest(body, ProtectionMode::kNone);
  EXPECT_EQ(r.proc().exit_code, 4u);
}

TEST(Scheduler, YieldRoundRobins) {
  // Two processes increment a channel counter alternately via yields; both
  // must make progress and exit.
  const char* body = R"(
_start:
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  movi r5, 10
py:
  movi r0, SYS_YIELD
  syscall
  addi r5, -1
  cmpi r5, 0
  jnz py
  mov r1, r0
  movi r0, SYS_WAITPID
  syscall
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
child:
  movi r5, 10
cy:
  movi r0, SYS_YIELD
  syscall
  addi r5, -1
  cmpi r5, 0
  jnz cy
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
)";
  auto r = run_guest_1core(body, ProtectionMode::kNone);
  EXPECT_GE(r.k->stats().context_switches, 10u);
}

TEST(Scheduler, TimerPreemptsCpuHogs) {
  // Two CPU-bound processes with no blocking: only the timer can
  // interleave them; both must finish.
  const char* body = R"(
_start:
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  movi r5, 200000
ploop:
  addi r5, -1
  cmpi r5, 0
  jnz ploop
  mov r1, r0
  movi r0, SYS_WAITPID
  syscall
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
child:
  movi r5, 200000
closs:
  addi r5, -1
  cmpi r5, 0
  jnz closs
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
)";
  auto r = run_guest_1core(body, ProtectionMode::kNone);
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_GE(r.k->stats().context_switches, 5u);
}

}  // namespace
}  // namespace sm
