// SMP tests (DESIGN.md §16): core-count resolution, the TLB shootdown
// protocol (restricting a translation on one core must kill every remote
// copy before the window opens), work stealing, determinism of the fixed
// dispatch-quantum interleave, and behavioural identity across core
// counts. The paper's invariants I1–I5 are per-TLB statements; these tests
// pin the machine-wide extensions I6–I7 that make them true per core.
#include <gtest/gtest.h>

#include <string>

#include "arch/mmu.h"
#include "arch/page_table.h"
#include "arch/pte.h"
#include "arch/tlb.h"
#include "invariant/watchdog.h"
#include "snapshot/replay_support.h"
#include "support/guest_runner.h"

namespace sm {
namespace {

using arch::u32;
using arch::u64;
using arch::vpn_of;
using core::ProtectionMode;
using core::ResponseMode;

// One process, one materialized split data page, then a spin — the guest
// stays alive so tests can drive the shootdown protocol by hand.
const char* kSpinWithSplitPage = R"(
_start:
  movi r4, buf
  movi r5, 7
  store [r4], r5
  load r6, [r4]
spin:
  jmp spin
.bss
buf: .space 64
)";

// Three processes at two cores: pids 1/2/3 shard to home cores 0/1/0, and
// pid 2 (core 1's only native work) exits immediately — so core 1 must
// steal from core 0's queue to stay busy while pids 1 and 3 yield-loop
// through split faults.
const char* kImbalancedForkWorkers = R"(
_start:
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz fastchild
  movi r0, SYS_FORK
  syscall
  jmp worker
fastchild:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
worker:
  movi r6, 30
wloop:
  movi r0, SYS_YIELD
  syscall
  movi r4, buf
  store [r4], r6
  load r5, [r4]
  addi r6, -1
  cmpi r6, 0
  jnz wloop
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 64
)";

kernel::KernelConfig cores_cfg(u32 n) {
  kernel::KernelConfig cfg;
  cfg.cores = n;
  return cfg;
}

arch::TlbEntry make_entry(u32 vpn, u32 pfn, bool writable) {
  arch::TlbEntry e;
  e.vpn = vpn;
  e.pfn = pfn;
  e.user = true;
  e.writable = writable;
  e.valid = true;
  return e;
}

TEST(Smp, ConfigCoreCountIsResolvedAtConstruction) {
  kernel::Kernel one(cores_cfg(1));
  EXPECT_EQ(one.num_cores(), 1u);
  kernel::Kernel four(cores_cfg(4));
  EXPECT_EQ(four.num_cores(), 4u);
  EXPECT_EQ(four.active_core(), 0u);
}

// The core protocol claim: after invalidate_page returns, NO core's TLB
// still holds the translation — a stale remote entry after a restrict is
// impossible (the shootdown waits for every ack).
TEST(Smp, ShootdownInvalidatesRemoteStaleTranslation) {
  auto r = testing::start_guest(kSpinWithSplitPage, ProtectionMode::kSplitAll,
                                ResponseMode::kBreak, cores_cfg(2));
  r.k->run(2'000);
  kernel::Process& p = r.proc();
  ASSERT_TRUE(p.alive());
  const auto program = assembler::assemble(guest::program(kSpinWithSplitPage));
  const u32 buf = program.symbol("buf");
  const u32 vpn = vpn_of(buf);
  const u32 root = p.as->root();
  const u32 target = (r.k->active_core() + 1) % 2;
  arch::Mmu& remote = r.k->core_mmu(target);

  // Pretend core `target` recently ran p: CR3 loaded, D-TLB caches buf.
  remote.set_cr3(root);
  remote.dtlb().insert(make_entry(vpn, p.as->pt().get(buf).pfn(), false));
  ASSERT_TRUE(remote.dtlb().contains(vpn));

  const u64 sends0 = r.k->stats().ipi_sends;
  const u64 rounds0 = r.k->stats().tlb_shootdowns;
  r.k->invalidate_page(p, buf);

  EXPECT_FALSE(remote.dtlb().contains(vpn))
      << "remote stale translation survived the shootdown";
  EXPECT_EQ(r.k->stats().tlb_shootdowns, rounds0 + 1);
  EXPECT_EQ(r.k->stats().ipi_sends, sends0 + 1);
  EXPECT_EQ(r.k->stats().ipi_acks, r.k->stats().ipi_sends);
  EXPECT_TRUE(r.k->pending_shootdowns().empty());

  // A core whose CR3 points elsewhere cannot cache the translation (CR3
  // writes flush), so it is not IPI'd: targeting is exact, not broadcast.
  remote.set_cr3(root + 1);
  remote.dtlb().insert(make_entry(vpn, p.as->pt().get(buf).pfn(), false));
  const u64 sends1 = r.k->stats().ipi_sends;
  r.k->invalidate_page(p, buf);
  EXPECT_EQ(r.k->stats().ipi_sends, sends1);
  EXPECT_TRUE(remote.dtlb().contains(vpn));
}

TEST(Smp, WorkStealingDrainsImbalancedQueues) {
  auto r = testing::run_guest(kImbalancedForkWorkers,
                              ProtectionMode::kSplitAll, 50'000'000,
                              cores_cfg(2));
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_GE(r.k->stats().work_steals, 1u)
      << "core 1 went idle without stealing core 0's surplus";
  // No injected faults: every IPI the shootdown protocol sent was acked.
  EXPECT_EQ(r.k->stats().ipi_acks, r.k->stats().ipi_sends);
  EXPECT_TRUE(r.k->pending_shootdowns().empty());
}

// The interleave is a fixed dispatch quantum on one host thread: two
// identical 4-core runs must produce byte-identical machines — stats,
// TLB contents, consoles, everything the snapshot serializes.
TEST(Smp, FourCoreRunIsDeterministic) {
  auto once = [] {
    auto r = testing::run_guest(kImbalancedForkWorkers,
                                ProtectionMode::kSplitAll, 50'000'000,
                                cores_cfg(4));
    EXPECT_TRUE(r.k->all_exited());
    return testing::save_bytes(*r.k);
  };
  const std::string a = once();
  const std::string b = once();
  EXPECT_EQ(a, b) << "4-core interleave diverged between identical runs";
}

// IPI delivery order is core-id order, every run. Two identical forced
// multi-target shootdowns must leave byte-identical machines — including
// the trace ring, where each kIpiSend/kIpiAck event is recorded in
// delivery order.
TEST(Smp, IpiDeliveryOrderingIsDeterministic) {
  auto once = [] {
    kernel::KernelConfig cfg = cores_cfg(4);
    cfg.trace = true;
    auto r = testing::start_guest(kSpinWithSplitPage,
                                  ProtectionMode::kSplitAll,
                                  ResponseMode::kBreak, cfg);
    r.k->run(3'000);
    kernel::Process& p = r.proc();
    const auto program =
        assembler::assemble(guest::program(kSpinWithSplitPage));
    const u32 buf = program.symbol("buf");
    const u32 root = p.as->root();
    // Every remote core caches the page (explicitly, so natural migration
    // cannot change the target set); the shootdown must hit all three.
    for (u32 off = 1; off <= 3; ++off) {
      const u32 t = (r.k->active_core() + off) % 4;
      arch::Mmu& m = r.k->core_mmu(t);
      m.set_cr3(root);
      m.dtlb().insert(
          make_entry(vpn_of(buf), p.as->pt().get(buf).pfn(), false));
    }
    const u64 sends0 = r.k->stats().ipi_sends;
    r.k->invalidate_page(p, buf);
    EXPECT_EQ(r.k->stats().ipi_sends, sends0 + 3);
    EXPECT_EQ(r.k->stats().ipi_acks, r.k->stats().ipi_sends);
    r.k->run(2'000);
    return testing::save_bytes(*r.k);
  };
  const std::string a = once();
  const std::string b = once();
  EXPECT_EQ(a, b) << "IPI ordering diverged between identical runs";
}

// Core count changes scheduling (cycles, switch counts) but must never
// change guest-observable behaviour: per-process exit codes and final
// memory digests are identical at 1 and 4 cores.
TEST(Smp, BehaviourIdenticalAcrossCoreCounts) {
  auto one = testing::run_guest(kImbalancedForkWorkers,
                                ProtectionMode::kSplitAll, 50'000'000,
                                cores_cfg(1));
  auto four = testing::run_guest(kImbalancedForkWorkers,
                                 ProtectionMode::kSplitAll, 50'000'000,
                                 cores_cfg(4));
  ASSERT_TRUE(one.k->all_exited());
  ASSERT_TRUE(four.k->all_exited());
  for (kernel::Pid pid = 1; pid <= 3; ++pid) {
    const kernel::Process* a = one.k->process(pid);
    const kernel::Process* b = four.k->process(pid);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->exit_code, b->exit_code) << "pid " << pid;
    ASSERT_TRUE(a->exit_digest.has_value());
    ASSERT_TRUE(b->exit_digest.has_value());
    EXPECT_TRUE(*a->exit_digest == *b->exit_digest)
        << "pid " << pid << ": final memory differs across core counts";
  }
}

// A clean (fault-free) 4-core run never trips the watchdog: the shootdown
// protocol keeps I1–I7 true without a single repair.
TEST(Smp, CleanFourCoreRunHasNoInvariantViolations) {
  auto r = testing::start_guest(kImbalancedForkWorkers,
                                ProtectionMode::kSplitAll,
                                ResponseMode::kBreak, cores_cfg(4));
  invariant::InvariantWatchdog watchdog;
  watchdog.attach(*r.k);
  r.k->run(50'000'000);
  watchdog.finalize(*r.k);
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(watchdog.violations(), 0u);
  EXPECT_EQ(watchdog.breaches(), 0u);
  EXPECT_TRUE(r.k->pending_shootdowns().empty());
}

}  // namespace
}  // namespace sm
