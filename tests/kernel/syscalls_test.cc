// Syscall edge cases and error paths: bad descriptors, bad pointers, bad
// numbers — the kernel must return -1 (or kill on wild pointers), never
// corrupt state.
#include <gtest/gtest.h>

#include "support/guest_runner.h"

namespace sm {
namespace {

using arch::u32;
using core::ProtectionMode;
using kernel::ExitKind;
using testing::run_guest;
using testing::start_guest;

u32 result_of(const char* body) {
  auto r = run_guest(body, ProtectionMode::kSplitAll);
  EXPECT_EQ(r.proc().exit_kind, ExitKind::kExited);
  return r.proc().exit_code;
}

TEST(Syscalls, BadSyscallNumberReturnsError) {
  EXPECT_EQ(result_of(R"(
_start:
  movi r0, 9999
  syscall
  cmpi r0, -1
  jz ok
  movi r0, SYS_EXIT
  movi r1, 1
  syscall
ok:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
)"),
            0u);
}

TEST(Syscalls, ReadFromBadFdReturnsError) {
  EXPECT_EQ(result_of(R"(
_start:
  movi r0, SYS_READ
  movi r1, 42
  movi r2, buf
  movi r3, 4
  syscall
  cmpi r0, -1
  jz ok
  movi r0, SYS_EXIT
  movi r1, 1
  syscall
ok:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 8
)"),
            0u);
}

TEST(Syscalls, WriteWithUnmappedBufferReturnsError) {
  EXPECT_EQ(result_of(R"(
_start:
  movi r0, SYS_WRITE
  movi r1, FD_CONSOLE
  movi r2, 0x00000100    ; far outside any VMA
  movi r3, 8
  syscall
  cmpi r0, -1
  jz ok
  movi r0, SYS_EXIT
  movi r1, 1
  syscall
ok:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
)"),
            0u);
}

TEST(Syscalls, OpenMissingFileReturnsError) {
  EXPECT_EQ(result_of(R"(
_start:
  movi r0, SYS_OPEN
  movi r1, path
  movi r2, O_READ
  syscall
  cmpi r0, -1
  jz ok
  movi r0, SYS_EXIT
  movi r1, 1
  syscall
ok:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.data
path: .asciz "does-not-exist"
)"),
            0u);
}

TEST(Syscalls, FileWriteThenReadBack) {
  EXPECT_EQ(result_of(R"(
_start:
  movi r0, SYS_OPEN
  movi r1, path
  movi r2, O_WRITE
  syscall
  mov r5, r0
  movi r0, SYS_WRITE
  mov r1, r5
  movi r2, content
  movi r3, 6
  syscall
  movi r0, SYS_CLOSE
  mov r1, r5
  syscall
  movi r0, SYS_OPEN
  movi r1, path
  movi r2, O_READ
  syscall
  mov r5, r0
  movi r0, SYS_READ
  mov r1, r5
  movi r2, buf
  movi r3, 16
  syscall
  mov r1, r0              ; 6 bytes
  movi r4, buf
  loadb r2, [r4+1]
  add r1, r2              ; + 'e'
  movi r0, SYS_EXIT
  syscall
.data
path: .asciz "afile"
content: .ascii "hello\n"
.bss
buf: .space 16
)"),
            6u + 'e');
}

TEST(Syscalls, WaitpidOnUnknownPidReturnsError) {
  EXPECT_EQ(result_of(R"(
_start:
  movi r0, SYS_WAITPID
  movi r1, 777
  syscall
  cmpi r0, -1
  jz ok
  movi r0, SYS_EXIT
  movi r1, 1
  syscall
ok:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
)"),
            0u);
}

TEST(Syscalls, GetpidAndRandWork) {
  auto r = run_guest(R"(
_start:
  movi r0, SYS_GETPID
  syscall
  mov r5, r0
  movi r0, SYS_RAND
  syscall
  cmpi r0, 0
  jz maybe_zero
maybe_zero:
  mov r1, r5
  movi r0, SYS_EXIT
  syscall
)",
                     ProtectionMode::kNone);
  EXPECT_EQ(r.proc().exit_code, 1u);  // first pid
}

TEST(Syscalls, ExecMissingImageReturnsError) {
  EXPECT_EQ(result_of(R"(
_start:
  movi r0, SYS_EXEC
  movi r1, path
  syscall
  cmpi r0, -1
  jz ok
  movi r0, SYS_EXIT
  movi r1, 1
  syscall
ok:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.data
path: .asciz "missing"
)"),
            0u);
}

TEST(Syscalls, TimeAdvancesMonotonically) {
  EXPECT_EQ(result_of(R"(
_start:
  movi r0, SYS_TIME
  syscall
  mov r5, r0
  movi r4, 0
burn:
  addi r4, 1
  cmpi r4, 100
  jnz burn
  movi r0, SYS_TIME
  syscall
  cmp r0, r5
  jb bad                  ; time went backwards?
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
bad:
  movi r0, SYS_EXIT
  movi r1, 1
  syscall
)"),
            0u);
}

TEST(Syscalls, ConsoleReadsReturnZero) {
  EXPECT_EQ(result_of(R"(
_start:
  movi r0, SYS_READ
  movi r1, FD_CONSOLE
  movi r2, buf
  movi r3, 4
  syscall
  mov r1, r0
  movi r0, SYS_EXIT
  syscall
.bss
buf: .space 4
)"),
            0u);
}

TEST(Signatures, UnsignedImageRefusedWhenRequired) {
  kernel::KernelConfig cfg;
  cfg.require_signatures = true;
  cfg.signing_key = {1, 2, 3};
  kernel::Kernel k(cfg);
  k.register_image(testing::build_guest_image(R"(
_start:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
)"));
  EXPECT_THROW(k.spawn("guest"), std::runtime_error);
}

TEST(Signatures, SignedImageRuns) {
  kernel::KernelConfig cfg;
  cfg.require_signatures = true;
  cfg.signing_key = {1, 2, 3};
  kernel::Kernel k(cfg);
  image::Image img = testing::build_guest_image(R"(
_start:
  movi r0, SYS_EXIT
  movi r1, 5
  syscall
)");
  img.sign(cfg.signing_key);
  k.register_image(std::move(img));
  const auto pid = k.spawn("guest");
  k.run(1'000'000);
  EXPECT_EQ(k.process(pid)->exit_code, 5u);
}

TEST(Signatures, ExecRefusesTamperedImage) {
  kernel::KernelConfig cfg;
  cfg.require_signatures = true;
  cfg.signing_key = {9};
  kernel::Kernel k(cfg);
  image::Image host = testing::build_guest_image(R"(
_start:
  movi r0, SYS_EXEC
  movi r1, path
  syscall
  cmpi r0, -1
  jz refused
  movi r0, SYS_EXIT
  movi r1, 1
  syscall
refused:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.data
path: .asciz "evil"
)");
  host.sign(cfg.signing_key);
  k.register_image(std::move(host));

  image::Image evil = testing::build_guest_image("_start:\n  nop\n", "evil");
  evil.sign(cfg.signing_key);
  evil.segments[0].bytes[0] ^= 0xFF;  // tampered after signing
  k.register_image(std::move(evil));

  const auto pid = k.spawn("guest");
  k.run(1'000'000);
  EXPECT_EQ(k.process(pid)->exit_code, 0u);  // exec was refused
}

TEST(Loader, MisalignedSegmentIsRejected) {
  image::Image img = testing::build_guest_image(R"(
_start:
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
)");
  img.segments[0].vaddr += 12;  // knock the text segment off its page
  kernel::Kernel k;
  k.register_image(std::move(img));
  EXPECT_THROW(k.spawn("guest"), std::runtime_error);
}

TEST(StackRandomization, VariesAcrossSeedsAndStaysAligned) {
  const char* body = R"(
_start:
  mov r1, sp
  movi r0, SYS_EXIT
  syscall
)";
  std::set<u32> seen;
  for (u32 seed = 1; seed <= 8; ++seed) {
    kernel::KernelConfig cfg;
    cfg.stack_randomization = true;
    cfg.rng_seed = seed;
    auto r = start_guest(body, ProtectionMode::kNone,
                         core::ResponseMode::kBreak, cfg);
    r.k->run(1'000'000);
    const u32 sp = r.proc().exit_code;
    EXPECT_EQ(sp % 16, 0u) << "stack must stay 16-byte aligned";
    seen.insert(sp);
  }
  EXPECT_GE(seen.size(), 6u) << "randomization barely varies";
}

TEST(StackRandomization, OffByDefaultIsDeterministic) {
  const char* body = R"(
_start:
  mov r1, sp
  movi r0, SYS_EXIT
  syscall
)";
  auto a = run_guest(body, ProtectionMode::kNone);
  auto b = run_guest(body, ProtectionMode::kNone);
  EXPECT_EQ(a.proc().exit_code, b.proc().exit_code);
}

}  // namespace
}  // namespace sm
