// Event-driven wakeup semantics: a pipe write wakes exactly its blocked
// readers, close/exit transitions deliver EOF and EPIPE to sleepers, exit
// wakes exactly the waiting parent, and the whole machinery costs O(1)
// wake work per event regardless of how many unrelated processes exist.
#include <gtest/gtest.h>

#include <string>

#include "support/guest_runner.h"

namespace sm {
namespace {

using core::ProtectionMode;
using testing::run_guest;

// A writer blocked on a full pipe is woken with EPIPE when the last read
// end closes. The child fills the pipe and blocks on one extra write; the
// parent (released by a sync byte) closes the final read end.
TEST(Wakeup, ReaderCloseWakesBlockedWriterWithEpipe) {
  const char* body = R"(
_start:
  movi r0, SYS_PIPE
  movi r1, fdsa
  syscall
  movi r0, SYS_PIPE
  movi r1, fdsb
  syscall
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  mov r5, r0
  ; parent: wait for the child's sync byte, then close our read end of A
  movi r0, SYS_READ
  movi r4, fdsb
  load r1, [r4]
  movi r2, buf
  movi r3, 1
  syscall
  movi r0, SYS_CLOSE
  movi r4, fdsa
  load r1, [r4]
  syscall
  movi r0, SYS_WAITPID
  mov r1, r5
  syscall
  mov r1, r0
  movi r0, SYS_EXIT
  syscall
child:
  ; drop our read end of A so the parent's close is the last one
  movi r0, SYS_CLOSE
  movi r4, fdsa
  load r1, [r4]
  syscall
  ; fill the 65536-byte pipe
  movi r5, 65536
fill:
  push r5
  mov r3, r5
  cmpi r3, 4096
  jb fsize
  movi r3, 4096
fsize:
  movi r0, SYS_WRITE
  movi r4, fdsa
  load r1, [r4+4]
  movi r2, block
  syscall
  mov r3, r0
  pop r5
  sub r5, r3
  cmpi r5, 0
  jnz fill
  ; tell the parent we are about to block
  movi r0, SYS_WRITE
  movi r4, fdsb
  load r1, [r4+4]
  movi r2, block
  movi r3, 1
  syscall
  ; this write blocks (pipe full), then the reader close wakes it: EPIPE
  movi r0, SYS_WRITE
  movi r4, fdsa
  load r1, [r4+4]
  movi r2, block
  movi r3, 4
  syscall
  addi r0, 1
  cmpi r0, 0
  jz epipe
  movi r0, SYS_EXIT
  movi r1, 9
  syscall
epipe:
  movi r0, SYS_EXIT
  movi r1, 7
  syscall
.bss
fdsa: .space 8
fdsb: .space 8
buf: .space 4
block: .space 4096
)";
  auto r = run_guest(body, ProtectionMode::kNone);
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.proc().exit_code, 7u);
}

// A reader blocked on an empty pipe is woken by a write, drains the queued
// data, and then sees EOF once every write end is gone — even though the
// last writer closed while bytes were still buffered.
TEST(Wakeup, EofDeliveredAfterQueuedDataDrains) {
  const char* body = R"(
_start:
  movi r0, SYS_PIPE
  movi r1, fds
  syscall
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  mov r5, r0
  ; let the child block on the empty pipe first
  movi r0, SYS_YIELD
  syscall
  movi r0, SYS_WRITE
  movi r4, fds
  load r1, [r4+4]
  movi r2, fds
  movi r3, 4
  syscall
  ; close the last write end with the 4 bytes still queued
  movi r0, SYS_CLOSE
  movi r4, fds
  load r1, [r4+4]
  syscall
  movi r0, SYS_WAITPID
  mov r1, r5
  syscall
  mov r1, r0
  movi r0, SYS_EXIT
  syscall
child:
  movi r0, SYS_CLOSE      ; drop our write end
  movi r4, fds
  load r1, [r4+4]
  syscall
  movi r0, SYS_READ       ; blocks: pipe empty, a writer still exists
  movi r4, fds
  load r1, [r4]
  movi r2, buf
  movi r3, 16
  syscall
  mov r5, r0
  movi r0, SYS_READ       ; queued data gone, writers gone: EOF
  movi r4, fds
  load r1, [r4]
  movi r2, buf
  movi r3, 16
  syscall
  add r5, r0              ; 4 + 0
  mov r1, r5
  movi r0, SYS_EXIT
  syscall
.bss
fds: .space 8
buf: .space 16
)";
  auto r = run_guest(body, ProtectionMode::kNone);
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.proc().exit_code, 4u);
}

// The last write end closing over an EMPTY pipe must wake the sleeping
// reader with an immediate EOF (the wake-all broadcast path).
TEST(Wakeup, CloseWakesBlockedReaderAtEof) {
  const char* body = R"(
_start:
  movi r0, SYS_PIPE
  movi r1, fds
  syscall
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  mov r5, r0
  movi r0, SYS_YIELD      ; let the child block first
  syscall
  movi r0, SYS_CLOSE      ; last write end: EOF broadcast
  movi r4, fds
  load r1, [r4+4]
  syscall
  movi r0, SYS_WAITPID
  mov r1, r5
  syscall
  mov r1, r0
  movi r0, SYS_EXIT
  syscall
child:
  movi r0, SYS_CLOSE      ; drop our write end
  movi r4, fds
  load r1, [r4+4]
  syscall
  movi r0, SYS_READ       ; blocks, then wakes to EOF
  movi r4, fds
  load r1, [r4]
  movi r2, buf
  movi r3, 8
  syscall
  cmpi r0, 0
  jz eof
  movi r0, SYS_EXIT
  movi r1, 9
  syscall
eof:
  movi r0, SYS_EXIT
  movi r1, 5
  syscall
.bss
fds: .space 8
buf: .space 8
)";
  auto r = run_guest(body, ProtectionMode::kNone);
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.proc().exit_code, 5u);
}

// waitpid racing the child's exit: one child exits while the parent is
// already blocked in waitpid (wake via the exit wait list), the other is
// long dead by the time the parent asks (immediate reap).
TEST(Wakeup, WaitpidRacesExit) {
  const char* body = R"(
_start:
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz quick
  mov r5, r0
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz slow
  mov r4, r0
  ; block on the first child before it has even run
  push r4
  movi r0, SYS_WAITPID
  mov r1, r5
  syscall
  pop r4
  mov r5, r0              ; 21
  ; by now the second child is a zombie: immediate reap
  movi r0, SYS_WAITPID
  mov r1, r4
  syscall
  add r5, r0              ; 21 + 22
  mov r1, r5
  movi r0, SYS_EXIT
  syscall
quick:
  movi r0, SYS_EXIT
  movi r1, 21
  syscall
slow:
  movi r5, 300
sloop:
  addi r5, -1
  cmpi r5, 0
  jnz sloop
  movi r0, SYS_EXIT
  movi r1, 22
  syscall
)";
  auto r = run_guest(body, ProtectionMode::kNone);
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.proc().exit_code, 43u);
}

// Three readers block on one pipe in spawn order; a single 12-byte write
// wakes the first, which hands off to the second, and so on. FIFO wake
// order means child N reads record N — deterministically.
TEST(Wakeup, MultipleReadersWokenInFifoOrder) {
  const char* body = R"(
_start:
  movi r0, SYS_PIPE
  movi r1, fds
  syscall
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  push r0
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  push r0
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  push r0
  movi r0, SYS_YIELD      ; run the children so they all block, in order
  syscall
  movi r0, SYS_WRITE      ; one write carrying all three records
  movi r4, fds
  load r1, [r4+4]
  movi r2, vals
  movi r3, 12
  syscall
  pop r1
  movi r0, SYS_WAITPID
  syscall
  pop r1
  movi r0, SYS_WAITPID
  syscall
  pop r1
  movi r0, SYS_WAITPID
  syscall
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
child:
  movi r0, SYS_READ
  movi r4, fds
  load r1, [r4]
  movi r2, buf
  movi r3, 4
  syscall
  movi r4, buf
  load r1, [r4]
  movi r0, SYS_EXIT
  syscall
.data
vals: .word 11
      .word 12
      .word 13
.bss
fds: .space 8
buf: .space 4
)";
  auto r = run_guest(body, ProtectionMode::kNone);
  ASSERT_TRUE(r.k->all_exited());
  // Children are pids 2, 3, 4 in fork order; FIFO wake order assigns them
  // the records in write order.
  EXPECT_EQ(r.k->process(2)->exit_code, 11u);
  EXPECT_EQ(r.k->process(3)->exit_code, 12u);
  EXPECT_EQ(r.k->process(4)->exit_code, 13u);
  EXPECT_EQ(r.proc().exit_code, 0u);
}

// select2 returns without blocking when an fd is already readable, and
// prefers fd_a when both are.
TEST(Wakeup, Select2ImmediateWithPriority) {
  const char* body = R"(
_start:
  movi r0, SYS_PIPE
  movi r1, fdsa
  syscall
  movi r0, SYS_PIPE
  movi r1, fdsb
  syscall
  movi r0, SYS_WRITE      ; make B readable
  movi r4, fdsb
  load r1, [r4+4]
  movi r2, fdsa
  movi r3, 4
  syscall
  movi r0, SYS_SELECT2
  movi r4, fdsa
  load r1, [r4]
  movi r4, fdsb
  load r2, [r4]
  syscall
  mov r5, r0              ; 1 (only B readable)
  movi r0, SYS_WRITE      ; now make A readable too
  movi r4, fdsa
  load r1, [r4+4]
  movi r2, fdsa
  movi r3, 4
  syscall
  movi r0, SYS_SELECT2
  movi r4, fdsa
  load r1, [r4]
  movi r4, fdsb
  load r2, [r4]
  syscall
  ; exit 10*first + second = 10*1 + 0
  mov r1, r5
  movi r2, 10
  mul r1, r2
  add r1, r0
  movi r0, SYS_EXIT
  syscall
.bss
fdsa: .space 8
fdsb: .space 8
)";
  auto r = run_guest(body, ProtectionMode::kNone);
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.proc().exit_code, 10u);
}

// A select2 sleeper is woken by a write to either registered pipe and told
// which one fired.
TEST(Wakeup, Select2WakesOnPipeWrite) {
  const char* body = R"(
_start:
  movi r0, SYS_PIPE
  movi r1, fdsa
  syscall
  movi r0, SYS_PIPE
  movi r1, fdsb
  syscall
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  mov r5, r0
  movi r0, SYS_YIELD      ; let the child block in select2
  syscall
  movi r0, SYS_WRITE      ; fire the SECOND pipe
  movi r4, fdsb
  load r1, [r4+4]
  movi r2, fdsa
  movi r3, 4
  syscall
  movi r0, SYS_WAITPID
  mov r1, r5
  syscall
  mov r1, r0
  movi r0, SYS_EXIT
  syscall
child:
  movi r0, SYS_SELECT2
  movi r4, fdsa
  load r1, [r4]
  movi r4, fdsb
  load r2, [r4]
  syscall
  addi r0, 30             ; 30 + which
  mov r1, r0
  movi r0, SYS_EXIT
  syscall
.bss
fdsa: .space 8
fdsb: .space 8
)";
  auto r = run_guest(body, ProtectionMode::kNone);
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.proc().exit_code, 31u);
}

// The scaling contract: wake work is charged per EVENT, not per process.
// K extra processes parked forever on their own pipes add ZERO wake-queue
// checks to an unrelated ping-pong workload — doubling the idle population
// leaves the count bit-identical (the retired global sweep scanned every
// process on every scheduling decision, so it scaled as O(procs)).
std::string scaling_body(int idle_count) {
  std::string body = R"(
_start:
  movi r5, )" + std::to_string(idle_count) +
                     R"(
spawnloop:
  cmpi r5, 0
  jz spawned
  movi r0, SYS_PIPE
  movi r1, ifds
  syscall
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz idle
  movi r0, SYS_CLOSE      ; parent drops both ends of the idle pipe
  movi r4, ifds
  load r1, [r4]
  syscall
  movi r0, SYS_CLOSE
  movi r4, ifds
  load r1, [r4+4]
  syscall
  addi r5, -1
  jmp spawnloop
idle:
  movi r0, SYS_READ       ; blocks forever: we hold our own write end
  movi r4, ifds
  load r1, [r4]
  movi r2, ibuf
  movi r3, 4
  syscall
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
spawned:
  movi r0, SYS_PIPE
  movi r1, fds1
  syscall
  movi r0, SYS_PIPE
  movi r1, fds2
  syscall
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz worker
  mov r5, r0
  movi r4, 25
ploop:
  push r4
  movi r0, SYS_WRITE
  movi r4, fds1
  load r1, [r4+4]
  movi r2, tok
  movi r3, 4
  syscall
  movi r0, SYS_READ
  movi r4, fds2
  load r1, [r4]
  movi r2, tok
  movi r3, 4
  syscall
  pop r4
  addi r4, -1
  cmpi r4, 0
  jnz ploop
  movi r0, SYS_WAITPID
  mov r1, r5
  syscall
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
worker:
  movi r4, 25
wloop:
  push r4
  movi r0, SYS_READ
  movi r4, fds1
  load r1, [r4]
  movi r2, tok2
  movi r3, 4
  syscall
  movi r0, SYS_WRITE
  movi r4, fds2
  load r1, [r4+4]
  movi r2, tok2
  movi r3, 4
  syscall
  pop r4
  addi r4, -1
  cmpi r4, 0
  jnz wloop
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.data
tok:  .word 1
tok2: .word 0
.bss
ifds: .space 8
ibuf: .space 4
fds1: .space 8
fds2: .space 8
)";
  return body;
}

// Both select2 fds become readable in the SAME parent quantum (two writes
// back to back, the parked child never runs in between). The child must
// wake exactly once, prefer fd_a, and the wake accounting must show the
// O(1) contract: a select2 park registers the pid on both queues, and
// each entry costs exactly one sched_wake_check over its lifetime — the
// A-entry when the first write wakes the child, the B-entry either when
// the second write finds it stale (two-write variant) or when pipe
// teardown sweeps it (one-write variant). Total checks are therefore
// bit-identical across the two variants.
std::string both_ready_body(int second_write) {
  const std::string flag = std::to_string(second_write);
  return R"(
_start:
  movi r0, SYS_PIPE
  movi r1, fdsa
  syscall
  movi r0, SYS_PIPE
  movi r1, fdsb
  syscall
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  mov r5, r0
  movi r0, SYS_YIELD      ; let the child park in select2 on A and B
  syscall
  movi r0, SYS_WRITE      ; A becomes readable: wakes the child (1 check)
  movi r4, fdsa
  load r1, [r4+4]
  movi r2, tok
  movi r3, 4
  syscall
  movi r6, )" + flag + R"(
  cmpi r6, 0
  jz nosecond
  movi r0, SYS_WRITE      ; B readable too, same quantum: the child's B
  movi r4, fdsb           ; entry is already stale (1 check, dropped)
  load r1, [r4+4]
  movi r2, tok
  movi r3, 4
  syscall
nosecond:
  movi r0, SYS_WAITPID
  mov r1, r5
  syscall
  mov r1, r0
  movi r0, SYS_EXIT
  syscall
child:
  movi r0, SYS_SELECT2
  movi r4, fdsa
  load r1, [r4]
  movi r4, fdsb
  load r2, [r4]
  syscall
  mov r5, r0              ; 0: fd_a preferred when both are ready
  movi r0, SYS_READ       ; drain A
  movi r4, fdsa
  load r1, [r4]
  movi r2, buf
  movi r3, 4
  syscall
  movi r6, )" + flag + R"(
  cmpi r6, 0
  jz nodrain
  movi r0, SYS_READ       ; drain B
  movi r4, fdsb
  load r1, [r4]
  movi r2, buf
  movi r3, 4
  syscall
nodrain:
  addi r5, 40
  mov r1, r5
  movi r0, SYS_EXIT
  syscall
.data
tok: .word 7
.bss
fdsa: .space 8
fdsb: .space 8
buf: .space 4
)";
}

TEST(Wakeup, Select2BothFdsReadySameQuantum) {
  auto one = testing::run_guest_1core(both_ready_body(0),
                                      ProtectionMode::kNone);
  auto both = testing::run_guest_1core(both_ready_body(1),
                                       ProtectionMode::kNone);
  ASSERT_TRUE(one.k->all_exited());
  ASSERT_TRUE(both.k->all_exited());
  // fd_a preferred in both variants (exit = 40 + select2 result).
  EXPECT_EQ(one.proc().exit_code, 40u);
  EXPECT_EQ(both.proc().exit_code, 40u);
  // One check per queue entry per lifetime, no matter how it resolves.
  EXPECT_EQ(both.k->stats().sched_wake_checks,
            one.k->stats().sched_wake_checks);
  EXPECT_GT(one.k->stats().sched_wake_checks, 0u);
}

// A waiter killed while parked in select2 must come off every queue for
// exactly one check per entry, and the machine must keep running: the
// kill wakes precisely the parent's waitpid (one check), a later write
// to one watched pipe drops that queue's stale entry (one check), and
// pipe teardown at parent exit sweeps the other (the second check of the
// final run). Nothing wedges, nothing is double-woken.
TEST(Wakeup, Select2WaiterKilledWhileParked) {
  const char* body = R"(
_start:
  movi r0, SYS_PIPE
  movi r1, fdsa
  syscall
  movi r0, SYS_PIPE
  movi r1, fdsb
  syscall
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  mov r5, r0
  movi r0, SYS_WAITPID    ; parks until the host kills the child
  mov r1, r5
  syscall
  movi r0, SYS_WRITE      ; the dead child's stale A entry drops in O(1)
  movi r4, fdsa
  load r1, [r4+4]
  movi r2, tok
  movi r3, 4
  syscall
  movi r0, SYS_EXIT
  movi r1, 60
  syscall
child:
  movi r0, SYS_SELECT2    ; parks on A and B; killed while parked
  movi r4, fdsa
  load r1, [r4]
  movi r4, fdsb
  load r2, [r4]
  syscall
  movi r0, SYS_EXIT       ; never reached
  movi r1, 9
  syscall
.data
tok: .word 7
.bss
fdsa: .space 8
fdsb: .space 8
)";
  kernel::KernelConfig cfg;
  cfg.cores = 1;
  auto r = testing::start_guest(body, ProtectionMode::kNone,
                                core::ResponseMode::kBreak, cfg);
  ASSERT_EQ(r.k->run(), kernel::Kernel::RunResult::kAllBlocked);
  kernel::Process* child = r.k->process(2);
  ASSERT_NE(child, nullptr);
  ASSERT_EQ(child->state, kernel::ProcState::kBlocked);

  const auto c0 = r.k->stats().sched_wake_checks;
  r.k->kill_process(*child, kernel::ExitKind::kKilledSigsegv,
                    "parked select2 waiter killed by test");
  // The kill checks (and wakes) exactly the parent's waitpid entry; the
  // select2 registrations stay behind as stale queue entries.
  EXPECT_EQ(r.k->stats().sched_wake_checks, c0 + 1);

  const auto c1 = r.k->stats().sched_wake_checks;
  ASSERT_EQ(r.k->run(), kernel::Kernel::RunResult::kAllExited);
  EXPECT_EQ(r.proc().exit_code, 60u);
  // Exactly two more checks: the parent's write pops the stale A entry,
  // and the B pipe's EOF sweep at parent exit pops the stale B entry.
  EXPECT_EQ(r.k->stats().sched_wake_checks, c1 + 2);
}

TEST(Wakeup, EventWakeupsIndependentOfIdleProcessCount) {
  auto small = run_guest(scaling_body(8), ProtectionMode::kNone);
  auto big = run_guest(scaling_body(16), ProtectionMode::kNone);
  // The parked idles leave the pipe workload's wake accounting untouched.
  EXPECT_EQ(small.k->stats().sched_wake_checks,
            big.k->stats().sched_wake_checks);
  // Sanity: the ping-pong really did exercise event wakeups (~2 per round
  // trip), and the extra idles really did get scheduled at least once.
  EXPECT_GE(small.k->stats().sched_wake_checks, 40u);
  EXPECT_GT(big.k->stats().context_switches,
            small.k->stats().context_switches);
  // The idles never exit: the runs end all-blocked with the ping-pong pair
  // (and every idle's own state) fully accounted for.
  EXPECT_EQ(small.proc().exit_code, 0u);
  EXPECT_EQ(big.proc().exit_code, 0u);
}

}  // namespace
}  // namespace sm
