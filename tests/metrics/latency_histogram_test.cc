// Log-bucketed latency histogram: bucket mapping, quantile bounds, and
// order-independence (the determinism the server bench relies on).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "metrics/latency_histogram.h"

namespace sm::metrics {
namespace {

TEST(LatencyHistogram, LinearRegionIsExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < LatencyHistogram::kLinear; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_of(v), v);
    EXPECT_EQ(LatencyHistogram::bucket_upper(LatencyHistogram::bucket_of(v)),
              v);
  }
}

TEST(LatencyHistogram, BucketUpperBoundsValueWithin4Percent) {
  // Every in-range value must land in a bucket whose upper bound is >=
  // the value and within one sub-bucket width above it (relative error
  // <= 1/32).
  for (std::uint64_t v : std::vector<std::uint64_t>{
           64, 65, 100, 127, 128, 1000, 4096, 65535, 1u << 20, 123456789,
           (1ull << 32) - 1}) {
    const std::uint64_t upper =
        LatencyHistogram::bucket_upper(LatencyHistogram::bucket_of(v));
    EXPECT_GE(upper, v) << v;
    EXPECT_LE(upper - v, v / 32 + 1) << v;
  }
}

TEST(LatencyHistogram, OverflowSaturatesIntoThePinnedBucket) {
  // Boundary: the last tracked value and the first overflowing one.
  const std::uint32_t last_tracked =
      LatencyHistogram::bucket_of(LatencyHistogram::kMaxTracked - 1);
  const std::uint32_t pinned =
      LatencyHistogram::bucket_of(LatencyHistogram::kMaxTracked);
  EXPECT_EQ(pinned, last_tracked + 1);
  // Everything past the range lands in the same pinned bucket.
  EXPECT_EQ(LatencyHistogram::bucket_of(LatencyHistogram::kMaxTracked + 1),
            pinned);
  EXPECT_EQ(LatencyHistogram::bucket_of(0x123456789abcdefull), pinned);
  EXPECT_EQ(LatencyHistogram::bucket_of(~std::uint64_t{0}), pinned);

  LatencyHistogram h;
  h.record(100);
  h.record(LatencyHistogram::kMaxTracked - 1);
  EXPECT_EQ(h.overflow(), 0u);
  h.record(LatencyHistogram::kMaxTracked);
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 4u);
  // The true maximum survives saturation, and the top quantile reports
  // it instead of a fictitious bucket bound.
  EXPECT_EQ(h.max_recorded(), ~std::uint64_t{0});
  EXPECT_EQ(h.quantile(1.0), ~std::uint64_t{0});
}

TEST(LatencyHistogram, QuantilesOfKnownDistribution) {
  LatencyHistogram h;
  // 1000 samples at 100 cycles, 10 at 10000, 1 at 1000000.
  for (int i = 0; i < 1000; ++i) h.record(100);
  for (int i = 0; i < 10; ++i) h.record(10000);
  h.record(1000000);
  EXPECT_EQ(h.count(), 1011u);
  const std::uint64_t p50 = h.percentile(50);
  const std::uint64_t p99 = h.percentile(99);
  const std::uint64_t p999 = h.percentile(99.9);
  EXPECT_GE(p50, 100u);
  EXPECT_LE(p50, 104u);  // one sub-bucket of slack
  // rank ceil(0.99 * 1011) = 1001: the first of the 10000-cycle samples.
  EXPECT_GE(p99, 10000u);
  EXPECT_LE(p99, 10400u);
  EXPECT_EQ(p999, p99);  // rank 1010 is still a 10000-cycle sample
  EXPECT_GE(h.quantile(1.0), 1000000u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 1000000u);
}

TEST(LatencyHistogram, OrderIndependent) {
  std::vector<std::uint64_t> samples;
  std::mt19937_64 rng(42);
  for (int i = 0; i < 5000; ++i) samples.push_back(rng() % 1000000);
  LatencyHistogram a;
  for (std::uint64_t v : samples) a.record(v);
  std::shuffle(samples.begin(), samples.end(), rng);
  LatencyHistogram b;
  for (std::uint64_t v : samples) b.record(v);
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(a.quantile(q), b.quantile(q)) << q;
  }
  EXPECT_EQ(a.sum(), b.sum());
}

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.99), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0u);
}

}  // namespace
}  // namespace sm::metrics
