// Metrics: counter formatting and cost-model defaults.
#include <gtest/gtest.h>

#include <sstream>

#include "metrics/cost_model.h"
#include "metrics/stats.h"

namespace sm::metrics {
namespace {

TEST(Stats, StreamFormatNamesEveryHeadlineCounter) {
  Stats s;
  s.cycles = 12;
  s.instructions = 7;
  s.page_faults = 3;
  s.split_dtlb_loads = 2;
  s.split_itlb_loads = 1;
  std::ostringstream os;
  os << s;
  const std::string out = os.str();
  EXPECT_NE(out.find("cycles=12"), std::string::npos);
  EXPECT_NE(out.find("instructions=7"), std::string::npos);
  EXPECT_NE(out.find("page_faults=3"), std::string::npos);
  EXPECT_NE(out.find("split_loads(d/i)=2/1"), std::string::npos);
}

TEST(Stats, ResetClearsEverything) {
  Stats s;
  s.cycles = 5;
  s.context_switches = 9;
  s.soft_tlb_fills = 4;
  s.reset();
  EXPECT_EQ(s.cycles, 0u);
  EXPECT_EQ(s.context_switches, 0u);
  EXPECT_EQ(s.soft_tlb_fills, 0u);
}

TEST(CostModel, DefaultsEncodeThePaperCostStructure) {
  const CostModel& m = default_cost_model();
  // A trap costs far more than a hardware walk; the split I-TLB load pays
  // TWO traps (fault + debug), the D-load one trap + touch (SS4.6).
  EXPECT_GT(m.trap_cost, 10 * m.tlb_walk);
  EXPECT_GT(m.context_switch, m.trap_cost);
  EXPECT_LT(m.kernel_touch, m.trap_cost);
  // The SPARC-style fill is a cheap trap (SS4.7).
  EXPECT_LT(m.soft_tlb_fill, m.trap_cost / 10);
  // The abandoned ret-call method's cache flush exceeds the debug trap it
  // saves (SS4.2.4 side note).
  EXPECT_GT(m.icache_sync, m.trap_cost);
}

}  // namespace
}  // namespace sm::metrics
