// Concurrent-simulation isolation (DESIGN.md §9): the runner's whole
// premise is that two Kernel instances share no mutable state, so running
// them on different host threads must yield exactly the results of running
// them back to back. These tests pin that contract directly — two kernels,
// different workloads, two std::threads — and are the payload of the TSan
// preset (any hidden shared state shows up as a data race there).
#include <gtest/gtest.h>

#include <thread>

#include "core/split_engine.h"
#include "metrics/stats.h"
#include "runner/experiment_runner.h"
#include "support/guest_runner.h"
#include "workloads/internal.h"
#include "workloads/workload.h"

namespace sm {
namespace {

using testing::GuestRun;
using testing::run_guest;

// Guest A: arithmetic loop with console output.
const char* kGuestA = R"(
_start:
  movi r5, 200
  movi r6, 0
loop:
  add r6, r5
  addi r5, -1
  cmpi r5, 0
  jnz loop
  movi r0, SYS_WRITE
  movi r1, 1
  movi r2, msg
  movi r3, 9
  syscall
  movi r0, SYS_EXIT
  mov r1, r6
  syscall
msg: .ascii "guest A!\n"
)";

// Guest B: store/load walker with a different exit code and console text.
const char* kGuestB = R"(
_start:
  movi r4, buf
  movi r5, 40
fill:
  store [r4], r5
  addi r4, 4096
  addi r5, -1
  cmpi r5, 0
  jnz fill
  movi r0, SYS_WRITE
  movi r1, 1
  movi r2, msg
  movi r3, 9
  syscall
  movi r0, SYS_EXIT
  movi r1, 7
  syscall
msg: .ascii "guest B!\n"
.bss
buf: .space 163840
)";

struct RunSnapshot {
  int exit_code = 0;
  std::string console;
  arch::Regs regs;
  metrics::Stats stats;
};

RunSnapshot snapshot(GuestRun& r) {
  RunSnapshot s;
  s.exit_code = r.proc().exit_code;
  s.console = r.console();
  s.regs = r.k->cpu().regs();
  s.stats = r.k->stats();
  return s;
}

void expect_same(const RunSnapshot& a, const RunSnapshot& b,
                 const char* who) {
  EXPECT_EQ(a.exit_code, b.exit_code) << who;
  EXPECT_EQ(a.console, b.console) << who;
  for (int i = 0; i < arch::kNumRegs; ++i) {
    EXPECT_EQ(a.regs.r[i], b.regs.r[i]) << who << " r" << i;
  }
  EXPECT_EQ(a.stats.cycles, b.stats.cycles) << who;
  EXPECT_EQ(a.stats.instructions, b.stats.instructions) << who;
  EXPECT_EQ(a.stats.dtlb_hits, b.stats.dtlb_hits) << who;
  EXPECT_EQ(a.stats.dtlb_misses, b.stats.dtlb_misses) << who;
  EXPECT_EQ(a.stats.page_faults, b.stats.page_faults) << who;
  EXPECT_EQ(a.stats.split_itlb_loads, b.stats.split_itlb_loads) << who;
  EXPECT_EQ(a.stats.context_switches, b.stats.context_switches) << who;
}

TEST(ConcurrentIsolation, TwoKernelsOnTwoThreadsMatchSerialRuns) {
  // Serial reference runs, one workload under each protection mode.
  GuestRun ser_a = run_guest(kGuestA, core::ProtectionMode::kSplitAll);
  GuestRun ser_b = run_guest(kGuestB, core::ProtectionMode::kNone);
  const RunSnapshot ref_a = snapshot(ser_a);
  const RunSnapshot ref_b = snapshot(ser_b);

  // Same two workloads, concurrently, on two host threads.
  RunSnapshot par_a, par_b;
  std::thread ta([&] {
    GuestRun r = run_guest(kGuestA, core::ProtectionMode::kSplitAll);
    par_a = snapshot(r);
  });
  std::thread tb([&] {
    GuestRun r = run_guest(kGuestB, core::ProtectionMode::kNone);
    par_b = snapshot(r);
  });
  ta.join();
  tb.join();

  expect_same(ref_a, par_a, "guest A");
  expect_same(ref_b, par_b, "guest B");
}

TEST(ConcurrentIsolation, WorkloadRunnersMatchSerialUnderThreadPool) {
  // Heavier check through the real workload layer: gzip-like and a
  // context-switch-bound pair, serial vs via the ExperimentRunner pool.
  auto gzip_point = [] {
    return workloads::run_gzip(workloads::Protection::split_all(), 16);
  };
  auto pipe_point = [] {
    return workloads::run_unixbench(workloads::UnixBench::kPipeContextSwitch,
                                    workloads::Protection::none());
  };
  const workloads::WorkloadResult ser_gzip = gzip_point();
  const workloads::WorkloadResult ser_pipe = pipe_point();

  runner::RunnerOptions opts;
  opts.jobs = 2;
  opts.progress = false;
  opts.bench_name = "concurrency_test";
  runner::ExperimentRunner pool(opts);
  const runner::ResultTable table = pool.run({
      {"gzip/split", [&] {
         const auto r = gzip_point();
         runner::PointResult res;
         res.add("cycles", static_cast<double>(r.cycles));
         res.add("sim_time", static_cast<double>(r.sim_time));
         res.add("instructions", static_cast<double>(r.stats.instructions));
         return res;
       }},
      {"pipe-ctxsw/base", [&] {
         const auto r = pipe_point();
         runner::PointResult res;
         res.add("cycles", static_cast<double>(r.cycles));
         res.add("sim_time", static_cast<double>(r.sim_time));
         res.add("instructions", static_cast<double>(r.stats.instructions));
         return res;
       }},
  });

  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(metric(table[0], "cycles"),
            static_cast<double>(ser_gzip.cycles));
  EXPECT_EQ(metric(table[0], "sim_time"),
            static_cast<double>(ser_gzip.sim_time));
  EXPECT_EQ(metric(table[0], "instructions"),
            static_cast<double>(ser_gzip.stats.instructions));
  EXPECT_EQ(metric(table[1], "cycles"),
            static_cast<double>(ser_pipe.cycles));
  EXPECT_EQ(metric(table[1], "sim_time"),
            static_cast<double>(ser_pipe.sim_time));
  EXPECT_EQ(metric(table[1], "instructions"),
            static_cast<double>(ser_pipe.stats.instructions));
}

}  // namespace
}  // namespace sm
