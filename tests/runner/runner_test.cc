// ExperimentRunner unit tests: index-ordered collection (the determinism
// contract's mechanism), labeled exception propagation, CLI parsing and
// the JSON sidecar. The workload-level determinism regression lives in
// ctest (determinism_* tests diff real figure binaries at --jobs=1 vs N).
#include "runner/experiment_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sm::runner {
namespace {

RunnerOptions quiet_opts(arch::u32 jobs) {
  RunnerOptions o;
  o.jobs = jobs;
  o.progress = false;
  o.bench_name = "runner_test";
  return o;
}

std::vector<SweepPoint> counting_points(int n) {
  std::vector<SweepPoint> points;
  for (int i = 0; i < n; ++i) {
    points.push_back({strf("p%d", i), [i] {
      PointResult res;
      res.text = strf("row %d\n", i);
      res.add("index", i);
      res.add("square", i * i);
      return res;
    }});
  }
  return points;
}

TEST(Strf, FormatsLikePrintf) {
  EXPECT_EQ(strf("%-8s %4d %6.3f", "ab", 7, 1.25), "ab          7  1.250");
  EXPECT_EQ(strf("empty"), "empty");
}

TEST(ExperimentRunner, CollectsByIndexNotCompletionOrder) {
  ExperimentRunner pool(quiet_opts(8));
  const ResultTable table = pool.run(counting_points(50));
  ASSERT_EQ(table.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(table[i].label, strf("p%d", i));
    EXPECT_EQ(table[i].result.text, strf("row %d\n", i));
    EXPECT_EQ(metric(table[i], "index"), i);
    EXPECT_EQ(metric(table[i], "square"), i * i);
  }
}

TEST(ExperimentRunner, ParallelTableMatchesSerialTable) {
  ExperimentRunner serial(quiet_opts(1));
  ExperimentRunner parallel(quiet_opts(8));
  const ResultTable a = serial.run(counting_points(32));
  const ResultTable b = parallel.run(counting_points(32));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].result.text, b[i].result.text);
    EXPECT_EQ(metric(a[i], "square"), metric(b[i], "square"));
  }
}

TEST(ExperimentRunner, EmptyPointSet) {
  ExperimentRunner pool(quiet_opts(4));
  EXPECT_EQ(pool.run({}).size(), 0u);
}

TEST(ExperimentRunner, ExceptionCarriesFailingPointLabel) {
  std::vector<SweepPoint> points = counting_points(8);
  points[5] = {"exploding-point", []() -> PointResult {
    throw std::runtime_error("boom");
  }};
  ExperimentRunner pool(quiet_opts(4));
  try {
    pool.run(points);
    FAIL() << "expected propagation";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("exploding-point"), std::string::npos) << what;
    EXPECT_NE(what.find("boom"), std::string::npos) << what;
  }
}

TEST(ExperimentRunner, LowestIndexFailureWinsRegardlessOfJobs) {
  for (const arch::u32 jobs : {1u, 8u}) {
    std::vector<SweepPoint> points = counting_points(16);
    points[12] = {"late-failure", []() -> PointResult {
      throw std::runtime_error("late");
    }};
    points[3] = {"early-failure", []() -> PointResult {
      throw std::runtime_error("early");
    }};
    ExperimentRunner pool(quiet_opts(jobs));
    try {
      pool.run(points);
      FAIL() << "expected propagation";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("early-failure"),
                std::string::npos)
          << "jobs=" << jobs << ": " << e.what();
    }
  }
}

TEST(ExperimentRunner, OtherPointsStillRunWhenOneFails) {
  std::atomic<int> ran{0};
  std::vector<SweepPoint> points;
  for (int i = 0; i < 10; ++i) {
    points.push_back({strf("p%d", i), [i, &ran]() -> PointResult {
      if (i == 0) throw std::runtime_error("first fails");
      ++ran;
      return {};
    }});
  }
  ExperimentRunner pool(quiet_opts(2));
  EXPECT_THROW(pool.run(points), std::runtime_error);
  EXPECT_EQ(ran.load(), 9);
}

TEST(ResultTable, PrintConcatenatesInOrder) {
  ResultTable t;
  t.add({"a", {"first\n", {}}, 0.0});
  t.add({"b", {"", {}}, 0.0});  // metric-only points contribute no text
  t.add({"c", {"third\n", {}}, 0.0});
  std::string path = ::testing::TempDir() + "runner_print.txt";
  std::FILE* f = std::fopen(path.c_str(), "w+");
  ASSERT_NE(f, nullptr);
  t.print(f);
  std::fclose(f);
  std::ifstream in(path);
  std::stringstream got;
  got << in.rdbuf();
  EXPECT_EQ(got.str(), "first\nthird\n");
}

TEST(ResultTable, JsonSidecarHasLabelsAndMetrics) {
  ResultTable t;
  PointRecord rec;
  rec.label = "p=10 seed=\"2\"";
  rec.result.add("normalized", 0.8125);  // exactly representable in binary
  rec.result.add("cycles", 123456789.0);
  rec.wall_seconds = 0.25;
  t.add(rec);
  const std::string doc = t.to_json("fig_test", 4, 1.5);
  EXPECT_NE(doc.find("\"name\": \"fig_test\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"jobs\": 4"), std::string::npos);
  EXPECT_NE(doc.find("\"p=10 seed=\\\"2\\\"\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"normalized\": 0.8125"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"cycles\": 123456789"), std::string::npos) << doc;

  const std::string path = ::testing::TempDir() + "runner_test.json";
  ASSERT_TRUE(t.write_json(path, "fig_test", 4, 1.5));
  std::ifstream in(path);
  std::stringstream file;
  file << in.rdbuf();
  EXPECT_EQ(file.str(), doc);
}

TEST(ParseRunnerArgs, SharedCliConvention) {
  const char* argv1[] = {"bench", "--jobs=3", "--json=/tmp/x.json",
                         "--quick"};
  RunnerOptions o1 = parse_runner_args(4, const_cast<char**>(argv1), "bench",
                                       "desc");
  EXPECT_EQ(o1.jobs, 3u);
  EXPECT_EQ(o1.json_path, "/tmp/x.json");
  EXPECT_TRUE(o1.quick);
  EXPECT_TRUE(o1.progress);

  const char* argv2[] = {"bench", "--jobs", "5", "--json", "out.json",
                         "--no-progress"};
  RunnerOptions o2 = parse_runner_args(6, const_cast<char**>(argv2), "bench",
                                       "desc");
  EXPECT_EQ(o2.jobs, 5u);
  EXPECT_EQ(o2.json_path, "out.json");
  EXPECT_FALSE(o2.quick);
  EXPECT_FALSE(o2.progress);

  const char* argv3[] = {"bench"};
  RunnerOptions o3 = parse_runner_args(1, const_cast<char**>(argv3), "bench",
                                       "desc");
  EXPECT_EQ(o3.jobs, 0u);  // resolved to hardware_concurrency by the runner
  ExperimentRunner pool(o3);
  EXPECT_GE(pool.jobs(), 1u);
}

}  // namespace
}  // namespace sm::runner
