// Regression battery for kernel state that is easy to forget in a
// checkpoint because it is "only" bookkeeping — yet drives observable
// behaviour after restore (ISSUE satellite). Each test aims a guest
// program at one such subsystem and replays snapshots across a dense
// prefix sweep; final-snapshot byte identity then proves the bookkeeping
// survived: fd free-slot heap holes, pipe/channel wait queues, the
// scheduler's runqueue order and slice accounting, and the kernel RNG
// cursor behind SYS_RAND.
#include <gtest/gtest.h>

#include <string>

#include "snapshot/replay_support.h"

namespace sm {
namespace {

using arch::u64;
using core::ProtectionMode;
using core::ResponseMode;
using kernel::Kernel;
using testing::body_replay_at;
using testing::body_length;
using testing::restore_bytes;
using testing::save_bytes;
using testing::snapshot_test_cfg;
using testing::start_guest;

constexpr u64 kBudget = 500'000;

// Dense sweep: snapshot at ~kSteps evenly spread prefixes of the run
// (always including 0 and T-1) and demand byte-identical finals.
void sweep_body_cfg(const std::string& body, const kernel::KernelConfig& cfg,
                    int steps = 16) {
  const u64 total = body_length(body, ProtectionMode::kSplitAll, cfg, kBudget);
  ASSERT_GT(total, 2u);
  ASSERT_LT(total, kBudget) << "body did not finish; sweep would be vacuous";
  for (int i = 0; i <= steps; ++i) {
    const u64 p = std::min<u64>(i * total / steps, total - 1);
    EXPECT_TRUE(body_replay_at(body, ProtectionMode::kSplitAll, p, cfg,
                               kBudget));
  }
}

void sweep_body(const std::string& body, int steps = 16) {
  sweep_body_cfg(body, snapshot_test_cfg(), steps);
}

// The fd allocator's free-slot min-heap: open 4 pipes, punch holes at
// fds 3/6/7, reopen. A snapshot taken mid-churn must carry the heap's
// holes, or the post-restore pipe lands on the wrong fds — which the
// guest makes observable by writing the returned fd numbers to the
// console.
TEST(LatentState, FdFreeSlotHeapHolesSurvive) {
  sweep_body(R"(
_start:
  movi r6, 4
mk:
  movi r0, SYS_PIPE
  movi r1, fds
  syscall
  addi r6, -1
  cmpi r6, 0
  jnz mk              ; pipes occupy fds 2..9 (fd 0 channel, fd 1 console)
  movi r0, SYS_CLOSE
  movi r1, 3
  syscall
  movi r0, SYS_CLOSE
  movi r1, 6
  syscall
  movi r0, SYS_CLOSE
  movi r1, 7
  syscall             ; holes at 3, 6, 7
  movi r0, SYS_PIPE
  movi r1, fds
  syscall             ; must land in the two lowest holes: 3 and 6
  movi r0, SYS_WRITE
  movi r1, 1
  movi r2, fds
  movi r3, 8
  syscall             ; console bytes encode the fds the heap handed out
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
fds: .space 8
)");
}

// Scheduler bookkeeping: fork, a child that yields (runqueue rotation),
// a parent blocked reading an empty pipe (wait queue), cross-process
// pipe traffic, then waitpid. Snapshots land mid-slice, with the
// runqueue in every rotation and the parent parked on the pipe's wait
// queue; restore must preserve runqueue ORDER, slice usage and the
// blocked syscall's resume state or the interleaving (and thus console,
// context-switch and cycle counts) shifts.
TEST(LatentState, RunqueueOrderSliceAndPipeWaitersSurvive) {
  sweep_body(R"(
_start:
  movi r0, SYS_PIPE
  movi r1, fds
  syscall
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  mov r7, r0          ; child pid
  movi r4, fds
  load r1, [r4]
  movi r0, SYS_READ
  movi r2, buf
  movi r3, 4
  syscall             ; blocks until the child writes
  movi r0, SYS_WRITE
  movi r1, 1
  movi r2, buf
  movi r3, 4
  syscall
  mov r1, r7
  movi r0, SYS_WAITPID
  syscall
  mov r1, r0
  movi r0, SYS_EXIT
  syscall             ; exit code = child's exit code
child:
  movi r0, SYS_YIELD
  syscall
  movi r0, SYS_YIELD
  syscall
  movi r5, 0x656b6177
  movi r4, buf
  store [r4], r5      ; "wake"
  movi r4, fds
  load r1, [r4+4]
  movi r0, SYS_WRITE
  movi r2, buf
  movi r3, 4
  syscall
  movi r0, SYS_EXIT
  movi r1, 7
  syscall
.bss
fds: .space 8
buf: .space 4
)",
             24);
}

// The kernel PRNG behind SYS_RAND is one u64 cursor; a snapshot that
// re-seeded instead of saving it would replay a DIFFERENT random
// sequence after restore. The guest streams six SYS_RAND values to the
// console, so the console bytes pin the exact post-restore sequence.
TEST(LatentState, RngCursorContinues) {
  sweep_body(R"(
_start:
  movi r6, 6
loop:
  movi r0, SYS_RAND
  syscall
  movi r4, buf
  store [r4], r0
  movi r0, SYS_WRITE
  movi r1, 1
  movi r2, buf
  movi r3, 4
  syscall
  addi r6, -1
  cmpi r6, 0
  jnz loop
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 4
)");
}

// channel_waiters_: a process blocked reading the host channel (fd 0) is
// parked on a wait queue keyed by the channel, with no pipe or timer to
// rediscover it. Snapshot the machine WHILE it is blocked, restore, then
// feed the restored channel from the host side: the process must wake,
// echo the payload, and leave a machine byte-identical to one that was
// never snapshotted.
TEST(LatentState, ChannelWaiterSurvivesRestore) {
  const char* body = R"(
_start:
  movi r0, SYS_READ
  movi r1, 0
  movi r2, buf
  movi r3, 8
  syscall
  mov r3, r0          ; bytes received
  movi r0, SYS_WRITE
  movi r1, 1
  movi r2, buf
  syscall
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 8
)";
  const kernel::KernelConfig cfg = snapshot_test_cfg();

  // Reference: run to the block, feed the channel, run to completion.
  auto straight = start_guest(body, ProtectionMode::kSplitAll,
                              ResponseMode::kBreak, cfg);
  ASSERT_EQ(straight.k->run(kBudget), Kernel::RunResult::kAllBlocked);
  straight.k->channel_of(straight.pid, 0)->host_write("ping");
  straight.k->run(kBudget);
  ASSERT_EQ(straight.proc().exit_kind, kernel::ExitKind::kExited);
  ASSERT_EQ(straight.console(), "ping");
  const std::string want = save_bytes(*straight.k);

  // Snapshot the blocked machine...
  auto saver = start_guest(body, ProtectionMode::kSplitAll,
                           ResponseMode::kBreak, cfg);
  ASSERT_EQ(saver.k->run(kBudget), Kernel::RunResult::kAllBlocked);
  const std::string blob = save_bytes(*saver.k);

  // ...restore it, and wake the waiter through the RESTORED channel.
  auto resumed = start_guest(body, ProtectionMode::kSplitAll,
                             ResponseMode::kBreak, cfg);
  restore_bytes(*resumed.k, blob);
  ASSERT_EQ(resumed.k->run(kBudget), Kernel::RunResult::kAllBlocked)
      << "restored process forgot it was blocked on the channel";
  resumed.k->channel_of(resumed.pid, 0)->host_write("ping");
  resumed.k->run(kBudget);
  EXPECT_EQ(resumed.proc().exit_kind, kernel::ExitKind::kExited);
  EXPECT_EQ(resumed.console(), "ping");
  EXPECT_TRUE(testing::machines_equal(want, save_bytes(*resumed.k)));
}

// Timer wheel + accept backlog (DESIGN.md §17): the parent sleeps on an
// armed deadline while the child parks two connections (each with a
// buffered request) in the listening socket's bounded backlog and then
// sleeps itself. Mid-run snapshots therefore land on machines whose only
// pending work is latent kernel state — armed timers the idle loop will
// jump to, and a non-empty accept FIFO nothing else references. Restore
// must preserve deadline order, remaining sleep and the backlog queue:
// the console proves it observably (replies echo in connect order), and
// final-snapshot field identity proves it exhaustively. The sweep runs
// at the default config, with the block engine off, and at 4 cores; the
// dbt on/off finals must also agree with EACH OTHER (billing identity).
const char* kSleepWithBacklogBody = R"(
_start:
  movi r0, SYS_LISTEN
  movi r1, 5
  movi r2, 4
  syscall             ; lfd = 2 (fd 0 channel, fd 1 console)
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  mov r7, r0
  movi r0, SYS_SLEEP  ; sleep while the child fills the backlog
  movi r1, 20000
  syscall
  movi r0, SYS_ACCEPT ; backlog is non-empty at wake: both pop instantly
  movi r1, 2
  movi r2, 0
  syscall
  mov r6, r0
  movi r0, SYS_ACCEPT
  movi r1, 2
  movi r2, 0
  syscall
  mov r5, r0
  movi r0, SYS_READ   ; first-connected request, buffered pre-snapshot
  mov r1, r6
  movi r2, buf
  movi r3, 4
  syscall
  movi r0, SYS_WRITE
  movi r1, 1
  movi r2, buf
  movi r3, 4
  syscall
  movi r0, SYS_READ   ; second
  mov r1, r5
  movi r2, buf
  movi r3, 4
  syscall
  movi r0, SYS_WRITE
  movi r1, 1
  movi r2, buf
  movi r3, 4
  syscall
  mov r1, r7
  movi r0, SYS_WAITPID
  syscall
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
child:
  movi r0, SYS_CONNECT
  movi r1, 5
  syscall
  mov r6, r0
  movi r0, SYS_CONNECT
  movi r1, 5
  syscall
  mov r5, r0
  movi r4, buf
  movi r3, 0x31637463 ; "ctc1"
  store [r4], r3
  movi r0, SYS_WRITE
  mov r1, r6
  movi r2, buf
  movi r3, 4
  syscall
  movi r4, buf
  movi r3, 0x32637463 ; "ctc2"
  store [r4], r3
  movi r0, SYS_WRITE
  mov r1, r5
  movi r2, buf
  movi r3, 4
  syscall
  movi r0, SYS_SLEEP  ; now BOTH processes hold armed timers
  movi r1, 3000
  syscall
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 4
)";

TEST(LatentState, ArmedTimersAndAcceptBacklogSurvive) {
  // Not vacuous: the straight run must actually exercise the machinery.
  auto straight = start_guest(kSleepWithBacklogBody, ProtectionMode::kSplitAll,
                              ResponseMode::kBreak, snapshot_test_cfg());
  straight.k->run(kBudget);
  ASSERT_EQ(straight.proc().exit_kind, kernel::ExitKind::kExited);
  ASSERT_EQ(straight.console(), "ctc1ctc2")
      << "accept order or buffered requests wrong before any snapshot";
  ASSERT_GE(straight.k->stats().timer_fires, 2u);
  ASSERT_EQ(straight.k->stats().sock_accepts, 2u);

  sweep_body_cfg(kSleepWithBacklogBody, snapshot_test_cfg());

  kernel::KernelConfig nodbt = snapshot_test_cfg();
  nodbt.dbt = false;
  sweep_body_cfg(kSleepWithBacklogBody, nodbt, 8);

  kernel::KernelConfig smp = snapshot_test_cfg();
  smp.cores = 4;
  sweep_body_cfg(kSleepWithBacklogBody, smp, 8);

  // Billing identity across the block engine: the dbt-off straight final
  // matches the dbt-on one on every simulated field.
  auto interp = start_guest(kSleepWithBacklogBody, ProtectionMode::kSplitAll,
                            ResponseMode::kBreak, nodbt);
  interp.k->run(kBudget);
  EXPECT_TRUE(testing::machines_equal(save_bytes(*straight.k),
                                      save_bytes(*interp.k)));
}

}  // namespace
}  // namespace sm
