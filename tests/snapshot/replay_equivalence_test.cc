// The replay-equivalence battery (ISSUE: checkpoint/restore tentpole).
//
// Property: for any benign fuzz program and any split point N,
//
//     run(budget)  ==  run(N); save; restore-into-fresh-kernel; run(rest)
//
// on BOTH oracle clauses — behaviour (exit kind/code, console, syscall
// trace, final-memory digest, retired instructions, detections) and
// billing (every simulated counter, cycles included; only host-side
// fast-path counters are exempt, since restore drops those caches cold).
//
// The battery snapshots at every syscall boundary of each case (the
// natural checkpoints a fork-server fuzzer would use) plus a spread of
// pseudorandom instruction counts (which land inside split-protocol
// windows, mid-DBT-block, mid-fault-handling — anywhere), across every
// oracle configuration: all protection engines, paging strategies and
// fast-path/trace toggles.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "asm/assembler.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "fuzz/rng.h"
#include "fuzz/snapshot_replay.h"
#include "guest/guestlib.h"
#include "image/image.h"
#include "inject/fault_injector.h"
#include "invariant/watchdog.h"
#include "kernel/kernel.h"

namespace sm {
namespace {

using arch::u64;

constexpr u64 kBudget = 2'000'000;
constexpr u64 kCampaignSeed = 42;

// Small simulated machine: the battery boots hundreds of kernels, and
// guest behaviour is independent of RAM size.
fuzz::OracleConfig small(fuzz::OracleConfig c) {
  c.phys_frames = 2048;
  return c;
}

// Deterministic split-point spread over [0, total): splitmix64 stream, no
// host entropy (the battery must be reproducible from the test name).
std::vector<u64> random_points(u64 seed, u64 total, int count) {
  std::vector<u64> pts;
  u64 x = seed ^ 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < count; ++i) {
    x += 0x9e3779b97f4a7c15ull;
    u64 z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    if (total > 0) pts.push_back(z % total);
  }
  return pts;
}

void expect_replays(const fuzz::FuzzCase& c, const fuzz::OracleConfig& cfg,
                    const std::vector<u64>& points) {
  for (u64 p : points) {
    auto v = fuzz::check_replay_at(c, cfg, kBudget, p);
    EXPECT_TRUE(v.ok) << "[" << cfg.label << "] seed=" << c.seed
                      << " snapshot@" << p << ": " << v.divergence;
    if (!v.ok) return;  // one divergence per config is enough signal
  }
}

// The headline battery: K seeded programs under the primary engine
// (split-break), snapshotted at every syscall boundary plus 16 random
// instruction counts each.
TEST(ReplayEquivalence, SyscallBoundariesAndRandomPoints) {
  const fuzz::OracleConfig cfg =
      small({.label = "split-break", .mode = core::ProtectionMode::kSplitAll});
  for (u64 i = 1; i <= 4; ++i) {
    const fuzz::FuzzCase c =
        fuzz::generate(fuzz::case_seed(kCampaignSeed, i));
    auto rk = fuzz::make_case_kernel(c, cfg);
    const auto ref = fuzz::observe(*rk, rk->run(kBudget));
    ASSERT_GT(ref.instructions, 0u);

    std::vector<u64> points = fuzz::syscall_boundaries(c, cfg, kBudget);
    // Cap the boundary list so a syscall-heavy case cannot blow up test
    // time; an even stride keeps early/mid/late boundaries represented.
    if (points.size() > 24) {
      std::vector<u64> sampled;
      for (std::size_t j = 0; j < points.size(); j += points.size() / 24)
        sampled.push_back(points[j]);
      points.swap(sampled);
    }
    EXPECT_FALSE(points.empty())
        << "generator stopped emitting syscalls; battery lost its "
           "natural checkpoints";
    for (u64 p : random_points(c.seed, ref.instructions, 16))
      points.push_back(p);
    points.push_back(0);                     // before the first instruction
    points.push_back(ref.instructions - 1);  // just before the last
    expect_replays(c, cfg, points);
  }
}

// Every oracle configuration — engines (none/split/NX/PaX/mixed),
// response modes, paging strategies, fast-path and trace toggles — must
// replay. This is what makes restore's cold-cache policy load-bearing:
// decode/block caches and MMU memos differ across these configs, and
// restore must be billing-identical under all of them.
TEST(ReplayEquivalence, AllOracleConfigs) {
  const fuzz::FuzzCase c = fuzz::generate(fuzz::case_seed(kCampaignSeed, 2));
  std::vector<fuzz::OracleConfig> cfgs;
  for (const auto& b : fuzz::behavioral_configs()) cfgs.push_back(small(b));
  for (const auto& b : fuzz::billing_configs()) cfgs.push_back(small(b));
  for (const auto& cfg : cfgs) {
    auto rk = fuzz::make_case_kernel(c, cfg);
    const auto ref = fuzz::observe(*rk, rk->run(kBudget));
    ASSERT_GT(ref.instructions, 1u);
    expect_replays(c, cfg,
                   {0, 1, ref.instructions / 3, ref.instructions / 2,
                    ref.instructions - 1});
  }
}

// Mid-fault-schedule snapshots: a case with scheduled faults, the
// injector and invariant watchdog attached. Snapshot/restore must
// preserve the injector's schedule cursor and fired-record state and the
// watchdog's tallies — the restored run replays the remaining faults at
// the same instruction counts with the same outcomes.
TEST(ReplayEquivalence, MidFaultScheduleWithWatchdog) {
  fuzz::GenOptions gopts;
  gopts.fault_count = 12;
  const fuzz::FuzzCase c =
      fuzz::generate(fuzz::case_seed(99, 2), gopts);
  ASSERT_FALSE(c.faults.empty());

  struct Rig {
    std::unique_ptr<kernel::Kernel> k;
    std::unique_ptr<inject::FaultInjector> inj;
    std::unique_ptr<invariant::InvariantWatchdog> wd;
  };
  auto mk = [&]() {
    Rig r;
    kernel::KernelConfig kc;
    kc.record_syscall_trace = true;
    kc.capture_exit_digest = true;
    kc.phys_frames = 2048;
    r.k = std::make_unique<kernel::Kernel>(kc);
    r.k->set_engine(core::make_engine(core::ProtectionMode::kSplitAll,
                                      core::ResponseMode::kBreak));
    const auto program = assembler::assemble(guest::program(c.body));
    image::BuildOptions opts;
    opts.name = "fuzz";
    opts.mixed_text = c.mixed_text;
    r.k->register_image(image::build_image(program, opts));
    r.inj = std::make_unique<inject::FaultInjector>(c.faults);
    r.wd = std::make_unique<invariant::InvariantWatchdog>();
    r.inj->attach(*r.k);
    r.wd->attach(*r.k, r.inj.get());
    r.k->spawn("fuzz");
    return r;
  };

  Rig ref = mk();
  const auto ref_res = ref.k->run(kBudget);
  ref.wd->finalize(*ref.k);
  const auto ref_obs = fuzz::observe(*ref.k, ref_res);
  const u64 total = ref_obs.instructions;
  ASSERT_GT(total, 4u);

  for (u64 p : {total / 4, total / 2, (total * 3) / 4}) {
    Rig saver = mk();
    saver.k->run(p);
    std::ostringstream os;
    saver.k->save(os);

    Rig resumed = mk();
    std::istringstream is(os.str());
    ASSERT_NO_THROW(resumed.k->restore(is)) << "snapshot@" << p;
    const auto res = resumed.k->run(kBudget - p);
    resumed.wd->finalize(*resumed.k);
    const auto got = fuzz::observe(*resumed.k, res);

    std::string d = fuzz::diff_behavior(ref_obs, "straight", got, "restored");
    if (d.empty()) d = fuzz::diff_billing(ref_obs, "straight", got, "restored");
    EXPECT_EQ(d, "") << "snapshot@" << p;

    // The injector's record of which scheduled faults fired (and how they
    // were classified) must match the uninterrupted run exactly.
    const auto& ra = ref.inj->records();
    const auto& rb = resumed.inj->records();
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].fired, rb[i].fired)
          << "snapshot@" << p << " fault record #" << i;
      EXPECT_EQ(ra[i].outcome.has_value(), rb[i].outcome.has_value())
          << "snapshot@" << p << " fault record #" << i;
    }
    EXPECT_EQ(ref.wd->breaches(), resumed.wd->breaches()) << "snapshot@" << p;
  }
}

// The fork-server engine itself (tools/fuzz_driver --snapshot-prefix):
// repeated in-place resets from an in-memory snapshot must observe
// exactly what fresh full re-runs observe.
TEST(ReplayEquivalence, ForkServerResetsMatchFullReruns) {
  const fuzz::FuzzCase c = fuzz::generate(fuzz::case_seed(kCampaignSeed, 1));
  const fuzz::OracleConfig cfg =
      small({.label = "split-break", .mode = core::ProtectionMode::kSplitAll});
  const auto r = fuzz::run_fork_server_case(c, cfg, {.budget = kBudget});
  EXPECT_TRUE(r.ok) << r.divergence;
  EXPECT_GT(r.prefix_instructions, 0u);
  EXPECT_LT(r.prefix_instructions, r.total_instructions);
  EXPECT_GT(r.snapshot_bytes, 0u);
}

}  // namespace
}  // namespace sm
