// Shared helpers for the snapshot replay-equivalence battery.
//
// The strong form of "restored == straight-through" used here is FINAL
// SNAPSHOT FIELD IDENTITY: after both machines finish, save each and
// compare the streams field by field. The snapshot covers every piece of
// simulated state — stats (cycles included), consoles, fd tables, free
// lists, TLB entries and LRU clocks, trace ring and profiler buckets — so
// field identity subsumes every per-field assertion, and a mismatch names
// the drifted field. The ONLY tolerated differences are the host-side
// fast-path counters (fetch/data_fastpath_hits, decode_cache_*, block_*,
// sched_wake_checks): restore drops the host caches cold by design, so
// those counters legitimately differ — the same exemption the fuzz
// oracle's billing clause makes. Everything else must match to the byte.
#pragma once

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "snapshot/serializer.h"
#include "support/guest_runner.h"
#include "trace/trace.h"

namespace sm::testing {

inline kernel::KernelConfig snapshot_test_cfg(bool trace = false) {
  kernel::KernelConfig c;
  c.phys_frames = 2048;  // 8 MiB: plenty for guest bodies, quick to boot
  c.trace = trace;
  return c;
}

inline std::string save_bytes(kernel::Kernel& k) {
  std::ostringstream os;
  k.save(os);
  return os.str();
}

inline void restore_bytes(kernel::Kernel& k, const std::string& blob) {
  std::istringstream is(blob);
  k.restore(is);
}

// The host-side counters a cold-cache restore may legitimately change
// (mirrors the fuzz oracle's billing-clause exemption). The raw event
// ring is exempt for the same reason: kBlockBuild/kBlockInvalidate are
// host-engine cache events interleaved with the architectural ones, and
// a restored run honestly re-records the blocks its cold cache lost —
// architectural_events() below compares the non-host subset exactly.
inline bool host_side_counter(const std::string& key) {
  static const char* kExempt[] = {
      "machine.stats.fetch_fastpath_hits",
      "machine.stats.data_fastpath_hits",
      "machine.stats.decode_cache_",
      "machine.stats.block_",
      "machine.stats.sched_wake_checks",
      "machine.trace.events",
  };
  for (const char* p : kExempt) {
    if (key.rfind(p, 0) == 0) return true;
  }
  return false;
}

// The architectural event stream: everything except host-engine block
// cache traffic, rendered comparable.
inline std::vector<trace::Event> architectural_events(kernel::Kernel& k) {
  std::vector<trace::Event> out;
  if (trace::TraceSink* t = k.trace_sink()) {
    const auto& ring = t->events();
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const trace::Event& e = ring[i];
      if (e.kind == trace::EventKind::kBlockBuild ||
          e.kind == trace::EventKind::kBlockInvalidate) {
        continue;
      }
      out.push_back(e);
    }
  }
  return out;
}

inline ::testing::AssertionResult events_match(kernel::Kernel& want,
                                               kernel::Kernel& got) {
  const auto a = architectural_events(want);
  const auto b = architectural_events(got);
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "architectural event counts differ: " << a.size() << " vs "
           << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const trace::Event &x = a[i], &y = b[i];
    // Field-wise (not memcmp): Event has padding bytes.
    if (x.cycles != y.cycles || x.pid != y.pid || x.vaddr != y.vaddr ||
        x.info != y.info || x.kind != y.kind || x.arg != y.arg) {
      return ::testing::AssertionFailure()
             << "architectural event #" << i << " differs: kind="
             << static_cast<int>(x.kind) << "@cycle " << x.cycles
             << " vs kind=" << static_cast<int>(y.kind) << "@cycle "
             << y.cycles;
    }
  }
  return ::testing::AssertionSuccess();
}

// Field-level difference of two snapshots, host-side counters excluded.
// Empty means the simulated machines are identical.
inline std::vector<std::string> simulated_diff(const std::string& a,
                                               const std::string& b) {
  std::istringstream ia(a), ib(b);
  std::vector<std::string> out;
  for (const auto& line : snapshot::diff(ia, ib)) {
    if (!host_side_counter(line.substr(0, line.find(':')))) {
      out.push_back(line);
    }
  }
  return out;
}

inline ::testing::AssertionResult machines_equal(const std::string& want,
                                                 const std::string& got) {
  const auto d = simulated_diff(want, got);
  if (d.empty()) return ::testing::AssertionSuccess();
  auto fail = ::testing::AssertionFailure()
              << d.size() << " simulated field(s) diverged:";
  for (std::size_t i = 0; i < d.size() && i < 8; ++i) fail << "\n  " << d[i];
  return fail;
}

// Retired-instruction count of a straight run (the battery picks split
// points inside [0, T)).
inline arch::u64 body_length(const std::string& body,
                             core::ProtectionMode mode,
                             const kernel::KernelConfig& cfg,
                             arch::u64 budget = 500'000) {
  auto r = start_guest(body, mode, core::ResponseMode::kBreak, cfg);
  r.k->run(budget);
  return r.k->stats().instructions;
}

// Straight run vs snapshot-at-`prefix`/restore-into-fresh-kernel: both
// final machine states must agree on every simulated field.
inline ::testing::AssertionResult body_replay_at(
    const std::string& body, core::ProtectionMode mode, arch::u64 prefix,
    const kernel::KernelConfig& cfg, arch::u64 budget = 500'000) {
  auto straight = start_guest(body, mode, core::ResponseMode::kBreak, cfg);
  straight.k->run(budget);
  const std::string want = save_bytes(*straight.k);

  auto saver = start_guest(body, mode, core::ResponseMode::kBreak, cfg);
  if (prefix > 0) saver.k->run(prefix);
  const std::string mid = save_bytes(*saver.k);

  auto resumed = start_guest(body, mode, core::ResponseMode::kBreak, cfg);
  restore_bytes(*resumed.k, mid);
  resumed.k->run(budget - prefix);
  const std::string got = save_bytes(*resumed.k);

  auto eq = machines_equal(want, got);
  if (eq) return eq;
  return ::testing::AssertionFailure()
         << "snapshot at instruction " << prefix << ": " << eq.message();
}

}  // namespace sm::testing
