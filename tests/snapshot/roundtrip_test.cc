// Snapshot round-trip fidelity and hostile-input hardening (ISSUE
// satellite): save→restore→save must be byte-identical, and a damaged
// stream — truncated anywhere, any single bit flipped, wrong magic or
// version, config mismatch — must be rejected with snapshot::SnapshotError
// carrying a useful message, never undefined behaviour. The ci preset
// runs this file under ASan/UBSan, which is what makes "never UB" a
// checked claim rather than a hope.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "snapshot/replay_support.h"
#include "snapshot/serializer.h"

namespace sm {
namespace {

using arch::u64;
using core::ProtectionMode;
using core::ResponseMode;
using testing::restore_bytes;
using testing::save_bytes;
using testing::snapshot_test_cfg;
using testing::start_guest;

// Fork + pipe + console traffic: a mid-run snapshot of this program
// carries a rich object graph (two processes, shared COW pages, a pipe
// with a blocked reader, fd tables with shared refs).
const char* kForkPipeBody = R"(
_start:
  movi r0, SYS_PIPE
  movi r1, fds
  syscall
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  movi r4, fds
  load r1, [r4]
  movi r0, SYS_READ
  movi r2, buf
  movi r3, 4
  syscall
  movi r0, SYS_WRITE
  movi r1, 1
  movi r2, buf
  movi r3, 4
  syscall
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
child:
  movi r0, SYS_YIELD
  syscall
  movi r5, 0x6b6f6b6f
  movi r4, buf
  store [r4], r5
  movi r4, fds
  load r1, [r4+4]
  movi r0, SYS_WRITE
  movi r2, buf
  movi r3, 4
  syscall
  movi r0, SYS_EXIT
  movi r1, 7
  syscall
.bss
fds: .space 8
buf: .space 4
)";

testing::GuestRun boot(const kernel::KernelConfig& cfg) {
  return start_guest(kForkPipeBody, ProtectionMode::kSplitAll,
                     ResponseMode::kBreak, cfg);
}

// A mid-run snapshot with both processes alive and the pipe in play.
std::string mid_run_blob(const kernel::KernelConfig& cfg, u64 at = 40) {
  auto r = boot(cfg);
  r.k->run(at);
  return save_bytes(*r.k);
}

TEST(SnapshotRoundtrip, SaveRestoreSaveIsByteIdentical) {
  const kernel::KernelConfig cfg = snapshot_test_cfg();
  // Sweep several machine states, from boot through mid-fork to exited.
  for (u64 at : {u64{0}, u64{10}, u64{40}, u64{100'000}}) {
    const std::string first = mid_run_blob(cfg, at);
    auto r = boot(cfg);
    restore_bytes(*r.k, first);
    const std::string second = save_bytes(*r.k);
    EXPECT_EQ(first, second) << "snapshot@" << at
                             << ": restore lost or re-derived state";
  }
}

// The generic walkers must traverse a real snapshot and agree a snapshot
// differs from itself in zero fields — and pinpoint a field when two
// genuinely different machines are compared.
TEST(SnapshotRoundtrip, DumpWalksAndDiffPinpoints) {
  const kernel::KernelConfig cfg = snapshot_test_cfg();
  const std::string a = mid_run_blob(cfg, 10);
  const std::string b = mid_run_blob(cfg, 40);

  std::istringstream ia(a);
  const auto lines = snapshot::dump(ia);
  EXPECT_GT(lines.size(), 100u);  // a whole machine is not a handful of fields

  std::istringstream a1(a), a2(a);
  EXPECT_TRUE(snapshot::diff(a1, a2).empty());

  std::istringstream da(a), db(b);
  const auto d = snapshot::diff(da, db);
  EXPECT_FALSE(d.empty()) << "different machines diffed equal";
}

TEST(SnapshotRoundtrip, TruncationAlwaysRejected) {
  const kernel::KernelConfig cfg = snapshot_test_cfg();
  const std::string blob = mid_run_blob(cfg);
  ASSERT_GT(blob.size(), 64u);

  std::vector<std::size_t> cuts;
  for (std::size_t i = 0; i < 24; ++i) cuts.push_back(i);  // header region
  for (std::size_t i = 1; i < 24; ++i)
    cuts.push_back(i * blob.size() / 24);  // spread through the body
  cuts.push_back(blob.size() - 1);

  for (std::size_t cut : cuts) {
    auto r = boot(cfg);
    std::istringstream is(blob.substr(0, cut));
    EXPECT_THROW(r.k->restore(is), snapshot::SnapshotError)
        << "truncation at byte " << cut << " was not rejected";
  }
}

TEST(SnapshotRoundtrip, SingleBitFlipsNeverUndefined) {
  const kernel::KernelConfig cfg = snapshot_test_cfg();
  const std::string blob = mid_run_blob(cfg);

  // Every bit of the header plus a deterministic spread through the body.
  std::vector<std::size_t> offsets;
  for (std::size_t i = 0; i < 16; ++i) offsets.push_back(i);
  for (std::size_t i = 1; i < 48; ++i)
    offsets.push_back(i * blob.size() / 48);

  int rejected = 0, accepted = 0;
  for (std::size_t off : offsets) {
    std::string bad = blob;
    bad[off] = static_cast<char>(bad[off] ^ (1u << (off % 8)));
    auto r = boot(cfg);
    std::istringstream is(bad);
    // A flip may land in a value payload and yield a different-but-valid
    // machine (restore succeeds), or break structure/consistency
    // (SnapshotError). Anything else — any other exception type, or a
    // sanitizer report — is the bug this test exists to catch.
    try {
      r.k->restore(is);
      ++accepted;
    } catch (const snapshot::SnapshotError&) {
      ++rejected;
    }
  }
  // Structural bytes dominate the stream (tags + field names), so most
  // flips must be caught structurally.
  EXPECT_GT(rejected, 0);
  SUCCEED() << rejected << " flips rejected, " << accepted
            << " landed in value payloads";
}

TEST(SnapshotRoundtrip, BadMagicAndVersionRejected) {
  const kernel::KernelConfig cfg = snapshot_test_cfg();
  const std::string blob = mid_run_blob(cfg);

  {
    std::string bad = blob;
    bad[0] = 'X';
    auto r = boot(cfg);
    std::istringstream is(bad);
    EXPECT_THROW(r.k->restore(is), snapshot::SnapshotError);
  }
  {
    std::string bad = blob;
    bad[8] = static_cast<char>(snapshot::kFormatVersion + 1);  // version LE
    auto r = boot(cfg);
    std::istringstream is(bad);
    EXPECT_THROW(r.k->restore(is), snapshot::SnapshotError);
  }
  {
    auto r = boot(cfg);
    std::istringstream is("");
    EXPECT_THROW(r.k->restore(is), snapshot::SnapshotError);
  }
}

// restore() is an in-place reset of a kernel with the SAME configuration
// and engine; a mismatched machine must be refused, not coerced.
TEST(SnapshotRoundtrip, MismatchedMachineRejected) {
  const std::string blob = mid_run_blob(snapshot_test_cfg());

  {
    kernel::KernelConfig other = snapshot_test_cfg();
    other.phys_frames = 1024;  // different RAM size
    auto r = boot(other);
    std::istringstream is(blob);
    EXPECT_THROW(r.k->restore(is), snapshot::SnapshotError);
  }
  {
    auto r = start_guest(kForkPipeBody, ProtectionMode::kNone,
                         ResponseMode::kBreak, snapshot_test_cfg());
    std::istringstream is(blob);
    EXPECT_THROW(r.k->restore(is), snapshot::SnapshotError)
        << "snapshot of a split-protected machine restored into an "
           "unprotected kernel";
  }
}

}  // namespace
}  // namespace sm
