// SMP snapshot tests (format v2, DESIGN.md §15/§16): per-core TLB + CPU
// state and the interleave phase (active core, quantum remainder, parked
// shootdowns) must round-trip exactly — a restored 4-core machine resumes
// the dispatch interleave mid-turn, not from a fresh rotation — and a
// snapshot taken at one core count must be rejected by a kernel built at
// another.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "arch/mmu.h"
#include "arch/page_table.h"
#include "arch/tlb.h"
#include "inject/fault_injector.h"
#include "inject/fault_schedule.h"
#include "snapshot/replay_support.h"

namespace sm {
namespace {

using arch::u32;
using arch::u64;
using arch::vpn_of;
using core::ProtectionMode;
using core::ResponseMode;
using testing::restore_bytes;
using testing::save_bytes;
using testing::snapshot_test_cfg;
using testing::start_guest;

const char* kForkWorkers = R"(
_start:
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz worker
  movi r0, SYS_FORK
  syscall
  jmp worker
worker:
  movi r6, 30
wloop:
  movi r0, SYS_YIELD
  syscall
  movi r4, buf
  store [r4], r6
  load r5, [r4]
  addi r6, -1
  cmpi r6, 0
  jnz wloop
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 64
)";

const char* kSpinWithSplitPage = R"(
_start:
  movi r4, buf
  movi r5, 7
  store [r4], r5
  load r6, [r4]
spin:
  jmp spin
.bss
buf: .space 64
)";

kernel::KernelConfig smp_cfg(u32 cores) {
  kernel::KernelConfig cfg = snapshot_test_cfg();
  cfg.cores = cores;
  return cfg;
}

TEST(SmpSnapshot, SaveRestoreSaveByteIdenticalAtFourCores) {
  const kernel::KernelConfig cfg = smp_cfg(4);
  // 37 and 100 land mid dispatch quantum (32): the quantum remainder and
  // active core are part of what must survive.
  for (u64 at : {u64{0}, u64{37}, u64{100}, u64{5'000}, u64{200'000}}) {
    auto saver = start_guest(kForkWorkers, ProtectionMode::kSplitAll,
                             ResponseMode::kBreak, cfg);
    saver.k->run(at);
    const std::string first = save_bytes(*saver.k);

    auto resumed = start_guest(kForkWorkers, ProtectionMode::kSplitAll,
                               ResponseMode::kBreak, cfg);
    restore_bytes(*resumed.k, first);
    const std::string second = save_bytes(*resumed.k);
    EXPECT_EQ(first, second)
        << "snapshot@" << at << ": restore lost or re-derived SMP state";
  }
}

TEST(SmpSnapshot, ReplayEquivalenceAcrossQuantumBoundaries) {
  const kernel::KernelConfig cfg = smp_cfg(4);
  // Straight-through vs snapshot/restore at prefixes straddling the
  // 32-instruction core turns: the restored run must continue the
  // interleave exactly where the uninterrupted one would be.
  for (u64 prefix : {u64{1}, u64{31}, u64{32}, u64{33}, u64{100}, u64{777}}) {
    EXPECT_TRUE(testing::body_replay_at(kForkWorkers,
                                        ProtectionMode::kSplitAll, prefix,
                                        cfg));
  }
}

TEST(SmpSnapshot, CoreCountMismatchRejected) {
  auto two = start_guest(kForkWorkers, ProtectionMode::kSplitAll,
                         ResponseMode::kBreak, smp_cfg(2));
  two.k->run(100);
  const std::string blob = save_bytes(*two.k);

  auto four = start_guest(kForkWorkers, ProtectionMode::kSplitAll,
                          ResponseMode::kBreak, smp_cfg(4));
  EXPECT_THROW(restore_bytes(*four.k, blob), snapshot::SnapshotError);
}

// A shootdown whose IPI retries were all swallowed parks as pending with
// the stale translation still live on the remote core — the exact
// mid-shootdown machine state. Both the parked entry and the remote TLB
// contents must round-trip.
TEST(SmpSnapshot, MidShootdownPendingStateRoundTrips) {
  auto r = start_guest(kSpinWithSplitPage, ProtectionMode::kSplitAll,
                       ResponseMode::kBreak, smp_cfg(2));
  inject::FaultSchedule s;
  for (int i = 0; i < 3; ++i) {
    s.faults.push_back({0, inject::FaultKind::kDropIpi, 0});
  }
  // Warm up first, attach after: natural migration shootdowns would
  // otherwise consume the armed drops before the forced one below.
  r.k->run(2'000);
  inject::FaultInjector injector(std::move(s));
  injector.attach(*r.k);
  r.k->run(1);  // one spin step arms the schedule

  kernel::Process& p = r.proc();
  const auto program = assembler::assemble(guest::program(kSpinWithSplitPage));
  const u32 buf = program.symbol("buf");
  const u32 vpn = vpn_of(buf);
  const u32 target = (r.k->active_core() + 1) % 2;
  arch::Mmu& remote = r.k->core_mmu(target);
  remote.set_cr3(p.as->root());
  arch::TlbEntry e;
  e.vpn = vpn;
  e.pfn = p.as->pt().get(buf).pfn();
  e.user = true;
  e.valid = true;
  remote.dtlb().insert(e);

  r.k->invalidate_page(p, buf);  // all three IPI attempts dropped
  ASSERT_EQ(r.k->pending_shootdowns().size(), 1u);
  ASSERT_TRUE(remote.dtlb().contains(vpn));
  const std::string mid = save_bytes(*r.k);

  // Destroy the mid-shootdown state, then restore: both halves return.
  r.k->complete_pending_shootdowns();
  ASSERT_TRUE(r.k->pending_shootdowns().empty());
  ASSERT_FALSE(remote.dtlb().contains(vpn));

  restore_bytes(*r.k, mid);
  ASSERT_EQ(r.k->pending_shootdowns().size(), 1u);
  EXPECT_EQ(r.k->pending_shootdowns()[0].vpn, vpn);
  EXPECT_EQ(r.k->pending_shootdowns()[0].core_mask, u32{1} << target);
  EXPECT_TRUE(r.k->core_mmu(target).dtlb().contains(vpn))
      << "per-core TLB state did not round-trip";
  EXPECT_EQ(save_bytes(*r.k), mid);
}

}  // namespace
}  // namespace sm
