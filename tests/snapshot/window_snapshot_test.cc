// Snapshots taken INSIDE the Algorithm-2 single-step window (ISSUE
// satellite): TF armed, the I-TLB load recorded in pending_split_vaddr,
// the PTE temporarily unrestricted, the closing debug trap not yet
// delivered. This is the hardest split point in the machine — the window
// is pure architectural state spread across flags, the process object and
// simulated physical memory — and restore must resume it so faithfully
// that the closing trap fires at the same boundary and bills its cycles
// to the split load that armed it.
//
// Method: single-step a program whose control flow hops across fresh text
// pages (each hop opens a window), snapshot at EVERY in-window point
// found, restore each into a fresh kernel, run to completion, and demand
// the final machine state is byte-identical to an uninterrupted run —
// cycles, stats, trace-profiler buckets and all.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "snapshot/replay_support.h"

namespace sm {
namespace {

using arch::u64;
using core::ProtectionMode;
using core::ResponseMode;
using testing::restore_bytes;
using testing::save_bytes;
using testing::snapshot_test_cfg;
using testing::start_guest;

constexpr u64 kBudget = 200'000;

arch::Regs& live_regs(testing::GuestRun& r) {
  return r.k->regs_of(r.proc());
}

// Control flow hops across three fresh text pages; under split
// protection each hop takes the I-TLB load protocol, and any hop whose
// PTE the engine must temporarily unrestrict opens a TF window.
const char* kHopperBody = R"(
_start:
  movi r5, 0
  jmp p1
  .space 4000, 0x90
p1:
  addi r5, 1
  jmp p2
  .space 4000, 0x90
p2:
  addi r5, 2
  jmp p3
  .space 4000, 0x90
p3:
  addi r5, 3
  movi r0, SYS_WRITE
  movi r1, 1
  movi r2, msg
  movi r3, 4
  syscall
  movi r0, SYS_EXIT
  mov r1, r5
  syscall
msg: .ascii "done"
)";

struct WindowPoint {
  u64 instructions;  // retired count at save time
  arch::u32 pending; // the split vaddr whose window is open
  std::string blob;
};

// Single-steps the program and saves the machine at every point where the
// single-step window is armed (TF set + pending split load recorded).
std::vector<WindowPoint> collect_window_snapshots(
    const kernel::KernelConfig& cfg) {
  std::vector<WindowPoint> points;
  auto r = start_guest(kHopperBody, ProtectionMode::kSplitAll,
                       ResponseMode::kBreak, cfg);
  while (r.k->run(1) == kernel::Kernel::RunResult::kBudgetExhausted) {
    if (live_regs(r).tf() && r.proc().pending_split_vaddr.has_value()) {
      points.push_back({r.k->stats().instructions,
                        *r.proc().pending_split_vaddr, save_bytes(*r.k)});
    }
    if (r.k->stats().instructions > kBudget) break;  // runaway guard
  }
  return points;
}

void run_window_battery(const kernel::KernelConfig& cfg) {
  auto straight = start_guest(kHopperBody, ProtectionMode::kSplitAll,
                              ResponseMode::kBreak, cfg);
  straight.k->run(kBudget);
  ASSERT_EQ(straight.proc().exit_kind, kernel::ExitKind::kExited);
  ASSERT_EQ(straight.console(), "done");
  const std::string want = save_bytes(*straight.k);

  const auto points = collect_window_snapshots(cfg);
  // One window per fresh text page hop, at minimum. (Single-stepping may
  // observe the same window at several boundaries; all must replay.)
  ASSERT_GE(points.size(), 3u)
      << "program no longer opens single-step windows; the battery's "
         "hardest split point went untested";

  for (const auto& wp : points) {
    auto resumed = start_guest(kHopperBody, ProtectionMode::kSplitAll,
                               ResponseMode::kBreak, cfg);
    restore_bytes(*resumed.k, wp.blob);

    // The armed window itself must survive the round trip: trap flag up,
    // the in-flight split load remembered.
    ASSERT_TRUE(live_regs(resumed).tf())
        << "snapshot@" << wp.instructions << " lost the trap flag";
    ASSERT_TRUE(resumed.proc().pending_split_vaddr.has_value());
    EXPECT_EQ(*resumed.proc().pending_split_vaddr, wp.pending);

    resumed.k->run(kBudget - wp.instructions);
    EXPECT_EQ(resumed.proc().exit_kind, kernel::ExitKind::kExited);
    // Field identity of the final snapshots covers every counter the
    // closing trap touches — cycles included, so the trap's cost landed
    // on the same (restored) split load either way.
    EXPECT_TRUE(testing::machines_equal(want, save_bytes(*resumed.k)))
        << "snapshot@" << wp.instructions << " (window for vaddr 0x"
        << std::hex << wp.pending << std::dec << ")";
    EXPECT_EQ(resumed.k->stats().cycles, straight.k->stats().cycles);
    // With tracing on, the architectural event streams (split protocol
    // opens/closes, trap and syscall events with their cycle stamps) must
    // align exactly — host-engine block-cache events excepted.
    EXPECT_TRUE(testing::events_match(*straight.k, *resumed.k))
        << "snapshot@" << wp.instructions;
  }
}

TEST(WindowSnapshot, EveryInWindowPointReplays) {
  run_window_battery(snapshot_test_cfg());
}

// Same battery with the trace layer on: the profiler's attribution
// buckets and the event ring are part of the snapshot, so byte identity
// additionally proves the closing trap's cycles are attributed to the
// split load that armed it — across the save/restore boundary.
TEST(WindowSnapshot, TraceAttributionSurvivesMidWindowRestore) {
  run_window_battery(snapshot_test_cfg(/*trace=*/true));
}

// Software-TLB paging fills the I-TLB from the kernel directly (paper
// §4.7), so the split protocol needs no TF window at all there — assert
// that stays true (a window appearing under soft-TLB would mean the
// engine regressed to the hardware-walk dance), and that dense-prefix
// snapshots of the same program still replay exactly.
TEST(WindowSnapshot, SoftwareTlbOpensNoWindowsAndReplays) {
  kernel::KernelConfig cfg = snapshot_test_cfg();
  cfg.software_tlb = true;
  EXPECT_TRUE(collect_window_snapshots(cfg).empty());

  const arch::u64 total = testing::body_length(
      kHopperBody, ProtectionMode::kSplitAll, cfg, kBudget);
  ASSERT_GT(total, 2u);
  for (int i = 0; i <= 12; ++i) {
    const arch::u64 p = std::min<arch::u64>(i * total / 12, total - 1);
    EXPECT_TRUE(testing::body_replay_at(kHopperBody,
                                        ProtectionMode::kSplitAll, p, cfg,
                                        kBudget));
  }
}

}  // namespace
}  // namespace sm
