// Test/bench helper: assemble a guest program, boot a kernel with a chosen
// protection engine, and run it to completion.
#pragma once

#include <memory>
#include <string>

#include "asm/assembler.h"
#include "core/split_engine.h"
#include "guest/guestlib.h"
#include "image/image.h"
#include "kernel/kernel.h"

namespace sm::testing {

struct GuestRun {
  std::unique_ptr<kernel::Kernel> k;
  kernel::Pid pid = 0;
  std::shared_ptr<kernel::Channel> chan;

  kernel::Process& proc() { return *k->process(pid); }
  std::string console() { return proc().console; }

  // Externally visible behaviour beyond exit status, for the differential
  // fuzz oracle and for attack tests that want to assert "the protected
  // run matches the unprotected one" (or: "the attack changed nothing
  // observable"). Both are captured by the kernel because start_guest()
  // enables record_syscall_trace / capture_exit_digest by default.
  const std::vector<kernel::SyscallRecord>& syscall_trace() {
    return proc().syscall_trace;
  }
  // SHA-256 of the data view of the final address space; nullopt while the
  // process is still running.
  std::optional<image::Digest> final_digest() { return proc().exit_digest; }
};

inline image::Image build_guest_image(const std::string& body,
                                      const std::string& name = "guest",
                                      bool mixed_text = false) {
  const auto program = assembler::assemble(guest::program(body));
  image::BuildOptions opts;
  opts.name = name;
  opts.mixed_text = mixed_text;
  return image::build_image(program, opts);
}

// Boots a kernel running `body` under `mode`, with a channel on fd 0.
// Syscall tracing and exit digests are on: tests are the observability
// consumer these flags exist for, and the cost is noise at test scale.
inline GuestRun start_guest(const std::string& body,
                            core::ProtectionMode mode,
                            core::ResponseMode response =
                                core::ResponseMode::kBreak,
                            kernel::KernelConfig cfg = {}) {
  cfg.record_syscall_trace = true;
  cfg.capture_exit_digest = true;
  GuestRun r;
  r.k = std::make_unique<kernel::Kernel>(cfg);
  r.k->set_engine(core::make_engine(mode, response));
  r.k->register_image(build_guest_image(body));
  r.pid = r.k->spawn("guest");
  r.chan = r.k->attach_channel(r.pid);
  return r;
}

// Runs body to completion (no channel interaction) and returns the run.
inline GuestRun run_guest(const std::string& body, core::ProtectionMode mode,
                          arch::u64 budget = 50'000'000,
                          kernel::KernelConfig cfg = {}) {
  GuestRun r = start_guest(body, mode, core::ResponseMode::kBreak, cfg);
  r.k->run(budget);
  return r;
}

// run_guest pinned to one core: for tests that assert the single-core
// scheduler's exact behaviour (switch counts, interleave order), which the
// SM_CORES override would otherwise rewrite.
inline GuestRun run_guest_1core(const std::string& body,
                                core::ProtectionMode mode,
                                arch::u64 budget = 50'000'000) {
  kernel::KernelConfig cfg;
  cfg.cores = 1;
  return run_guest(body, mode, budget, cfg);
}

}  // namespace sm::testing
