// Chrome trace_event export: the JSON schema is a contract with external
// viewers (about://tracing, Perfetto), so it is pinned with a golden
// string — field order, phases and quoting included.
#include <gtest/gtest.h>

#include "trace/chrome_export.h"

namespace sm::trace {
namespace {

Event ev(EventKind kind, u64 cycles, u32 pid, u32 vaddr, u32 info = 0,
         u8 arg = 0) {
  Event e;
  e.cycles = cycles;
  e.pid = pid;
  e.vaddr = vaddr;
  e.info = info;
  e.kind = kind;
  e.arg = arg;
  return e;
}

TEST(ChromeExport, EmptyRing) {
  RingBuffer<Event> ring(4);
  EXPECT_EQ(chrome_trace_json(ring),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ns\"}");
}

TEST(ChromeExport, GoldenTimeline) {
  RingBuffer<Event> ring(8);
  ring.push(ev(EventKind::kTlbFill, 100, 1, 0x08048000, 2, kSideItlb));
  ring.push(ev(EventKind::kSingleStepOpen, 200, 1, 0x08048000));
  ring.push(ev(EventKind::kSingleStepClose, 250, 1, 0x08048000));

  const char* expected =
      "{\"traceEvents\":["
      "{\"name\":\"tlb-fill\",\"cat\":\"tlb\",\"ph\":\"i\",\"ts\":100,"
      "\"pid\":1,\"tid\":1,\"s\":\"t\",\"args\":{\"vaddr\":\"0x08048000\","
      "\"info\":2,\"arg\":0}},"
      "{\"name\":\"single-step\",\"cat\":\"split\",\"ph\":\"B\",\"ts\":200,"
      "\"pid\":1,\"tid\":1,\"args\":{\"vaddr\":\"0x08048000\","
      "\"info\":0,\"arg\":0}},"
      "{\"name\":\"single-step\",\"cat\":\"split\",\"ph\":\"E\",\"ts\":250,"
      "\"pid\":1,\"tid\":1,\"args\":{\"vaddr\":\"0x08048000\","
      "\"info\":0,\"arg\":0}}"
      "],\"displayTimeUnit\":\"ns\"}";
  EXPECT_EQ(chrome_trace_json(ring), expected);
}

TEST(ChromeExport, EveryKindHasANameAndCategory) {
  RingBuffer<Event> ring(64);
  for (std::size_t i = 0; i < static_cast<std::size_t>(EventKind::kCount);
       ++i) {
    ring.push(ev(static_cast<EventKind>(i), i, 1, 0x1000));
  }
  const std::string json = chrome_trace_json(ring);
  EXPECT_EQ(json.find("\"name\":\"?\""), std::string::npos);
  EXPECT_EQ(json.find("\"cat\":\"?\""), std::string::npos);
}

}  // namespace
}  // namespace sm::trace
