// Profiler attribution semantics: the cause classifier behind the paper's
// SS4.6 decomposition (capacity faults vs context-switch flushes), the
// trap-scope charge buffering, and the single-step hand-off that bills a
// debug trap to the split load that armed it.
#include <gtest/gtest.h>

#include <array>

#include "trace/profiler.h"

namespace sm::trace {
namespace {

Event ev(EventKind kind, u32 pid, u32 vaddr = 0, u8 arg = 0) {
  Event e;
  e.pid = pid;
  e.vaddr = vaddr;
  e.kind = kind;
  e.arg = arg;
  return e;
}

// Runs one "page-fault trap resolves a split I-TLB load" episode and
// returns the cause it was attributed to (buckets accumulate, so the
// episode's cause is whichever per-cause total grew).
Cause one_itlb_episode(Profiler& p, u32 pid, u32 vaddr, u64 cycles) {
  auto totals = [&] {
    std::array<u64, static_cast<std::size_t>(Cause::kCount)> t{};
    for (const Bucket& b : p.snapshot().buckets) {
      if (b.category == Category::kSplitItlbLoad && b.vpn == (vaddr >> 12)) {
        t[static_cast<std::size_t>(b.cause)] += b.cycles;
      }
    }
    return t;
  };
  const auto before = totals();
  p.begin_scope(Category::kPageFaultTrap, pid, vaddr);
  p.on_event(ev(EventKind::kSplitItlbLoad, pid, vaddr));
  p.charge(Category::kPageFaultTrap, cycles, pid, vaddr);
  p.end_scope();
  const auto after = totals();
  for (std::size_t i = 0; i < after.size(); ++i) {
    if (after[i] != before[i]) return static_cast<Cause>(i);
  }
  return Cause::kNone;
}

TEST(Profiler, ClassifiesColdThenCapacity) {
  Profiler p;
  // Never filled before: compulsory miss.
  EXPECT_EQ(one_itlb_episode(p, 1, 0x8048000, 100), Cause::kCold);
  // Reloaded in the same flush epoch: the entry was evicted for space.
  EXPECT_EQ(one_itlb_episode(p, 1, 0x8048000, 100), Cause::kCapacity);
}

TEST(Profiler, ClassifiesContextSwitchFlush) {
  Profiler p;
  one_itlb_episode(p, 1, 0x8048000, 100);
  p.on_event(ev(EventKind::kTlbFlush, 1, 0, kSideBoth));
  EXPECT_EQ(one_itlb_episode(p, 1, 0x8049000, 100), Cause::kCold);
  EXPECT_EQ(one_itlb_episode(p, 1, 0x8048000, 100), Cause::kCtxSwitchFlush);
}

TEST(Profiler, ClassifiesInvalidation) {
  Profiler p;
  one_itlb_episode(p, 1, 0x8048000, 100);
  p.on_event(ev(EventKind::kTlbInvlpg, 1, 0x8048000));
  // invlpg takes precedence over the flush epoch.
  p.on_event(ev(EventKind::kTlbFlush, 1, 0, kSideBoth));
  EXPECT_EQ(one_itlb_episode(p, 1, 0x8048000, 100), Cause::kInvalidation);
}

TEST(Profiler, HardwareFillRefreshesResidency) {
  Profiler p;
  one_itlb_episode(p, 1, 0x8048000, 100);
  p.on_event(ev(EventKind::kTlbFlush, 1, 0, kSideBoth));
  // A hardware fill after the flush re-establishes residency in the new
  // epoch, so the next split reload is a capacity miss, not a flush one.
  p.on_event(ev(EventKind::kTlbFill, 1, 0x8048000, kSideItlb));
  EXPECT_EQ(one_itlb_episode(p, 1, 0x8048000, 100), Cause::kCapacity);
}

TEST(Profiler, SidesClassifyIndependently) {
  Profiler p;
  // I-side residency must not make the D-side reload look like capacity.
  one_itlb_episode(p, 1, 0x8048000, 100);
  p.begin_scope(Category::kPageFaultTrap, 1, 0x8048000);
  p.on_event(ev(EventKind::kSplitDtlbLoad, 1, 0x8048000));
  p.charge(Category::kPageFaultTrap, 70, 1, 0x8048000);
  p.end_scope();
  const ProfileSummary s = p.snapshot();
  bool found = false;
  for (const Bucket& b : s.buckets) {
    if (b.category == Category::kSplitDtlbLoad) {
      EXPECT_EQ(b.cause, Cause::kCold);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Profiler, FirstScopeRefinementWins) {
  // A D-TLB preload riding inside an I-side resolution must not steal the
  // attribution: the whole trap bills to the I-TLB load.
  Profiler p;
  p.begin_scope(Category::kPageFaultTrap, 1, 0x8048000);
  p.on_event(ev(EventKind::kSplitItlbLoad, 1, 0x8048000));
  p.on_event(ev(EventKind::kSplitDtlbLoad, 1, 0x8048000));
  p.charge(Category::kPageFaultTrap, 1200, 1, 0x8048000);
  p.charge(Category::kKernelTouch, 30, 1, 0x8048000);
  p.end_scope();

  const ProfileSummary s = p.snapshot();
  EXPECT_EQ(s.category_cycles(Category::kSplitItlbLoad), 1230u);
  EXPECT_EQ(s.category_cycles(Category::kSplitDtlbLoad), 0u);
  EXPECT_EQ(s.category_cycles(Category::kPageFaultTrap), 0u);
  EXPECT_EQ(s.total_cycles, 1230u);
}

TEST(Profiler, DebugTrapBillsToTheSplitLoadThatArmedIt) {
  Profiler p;
  // Fault scope: split I-TLB load opens a single-step window.
  p.begin_scope(Category::kPageFaultTrap, 1, 0x8048000);
  p.on_event(ev(EventKind::kSplitItlbLoad, 1, 0x8048000));
  p.on_event(ev(EventKind::kSingleStepOpen, 1, 0x8048000));
  p.charge(Category::kPageFaultTrap, 100, 1, 0x8048000);
  p.end_scope();
  // The closing debug trap, one instruction later, same page.
  p.begin_scope(Category::kDebugTrap, 1, 0x8048004);
  p.charge(Category::kDebugTrap, 1200, 1, 0x8048004);
  p.on_event(ev(EventKind::kSingleStepClose, 1, 0x8048000));
  p.end_scope();

  const ProfileSummary s = p.snapshot();
  // Both halves of the protocol land in the split-itlb-load bucket.
  EXPECT_EQ(s.category_cycles(Category::kSplitItlbLoad), 1300u);
  EXPECT_EQ(s.category_cycles(Category::kDebugTrap), 0u);

  // The window is consumed: a later, unrelated debug trap stays a debug
  // trap.
  p.begin_scope(Category::kDebugTrap, 1, 0x8048008);
  p.charge(Category::kDebugTrap, 1200, 1, 0x8048008);
  p.end_scope();
  EXPECT_EQ(p.snapshot().category_cycles(Category::kDebugTrap), 1200u);
}

TEST(Profiler, UnrefinedScopeKeepsPerCategoryBuckets) {
  Profiler p;
  p.begin_scope(Category::kSyscall, 2, 0x8048000);
  p.charge(Category::kSyscall, 150, 2, 0x8048000);
  p.charge(Category::kDemandPage, 500, 2, 0x8048000);
  p.end_scope();

  const ProfileSummary s = p.snapshot();
  EXPECT_EQ(s.category_cycles(Category::kSyscall), 150u);
  EXPECT_EQ(s.category_cycles(Category::kDemandPage), 500u);
}

TEST(Profiler, ChargesOutsideAnyScopeLandDirectly) {
  Profiler p;
  p.charge(Category::kExec, 7, 1, 0x8048123);
  const ProfileSummary s = p.snapshot();
  ASSERT_EQ(s.buckets.size(), 1u);
  EXPECT_EQ(s.buckets[0].category, Category::kExec);
  EXPECT_EQ(s.buckets[0].cause, Cause::kNone);
  EXPECT_EQ(s.buckets[0].vpn, 0x8048u);
  EXPECT_EQ(s.buckets[0].pid, 1u);
}

TEST(Profiler, Ss46RollupsSeparateTheTwoOverheadSources) {
  Profiler p;
  // One capacity reload (80 cycles) and one flush reload (90), plus the
  // CR3-reload charge itself (4000).
  one_itlb_episode(p, 1, 0x8048000, 10);  // cold
  one_itlb_episode(p, 1, 0x8048000, 80);  // capacity
  p.charge(Category::kContextSwitch, 4000, 1, 0);
  p.on_event(ev(EventKind::kTlbFlush, 1, 0, kSideBoth));
  one_itlb_episode(p, 1, 0x8048000, 90);  // ctxsw-flush

  const ProfileSummary s = p.snapshot();
  EXPECT_EQ(s.capacity_fault_cycles(), 80u);
  EXPECT_EQ(s.ctx_switch_flush_cycles(), 4090u);  // 4000 cr3 + 90 reload
  EXPECT_EQ(s.cause_cycles(Cause::kCold), 10u);

  const std::string text = format_summary(s);
  EXPECT_NE(text.find("SS4.6 decomposition:"), std::string::npos);
  EXPECT_NE(text.find("context-switch flushes"), std::string::npos);
  EXPECT_NE(text.find("tlb capacity faults"), std::string::npos);
  // Deterministic: formatting the same snapshot twice is byte-identical.
  EXPECT_EQ(text, format_summary(p.snapshot()));
}

}  // namespace
}  // namespace sm::trace
