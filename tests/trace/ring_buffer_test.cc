// RingBuffer and TraceSink storage semantics: bounded, overwrite-oldest,
// oldest-first iteration, and the recorded/dropped accounting the summary
// reports.
#include <gtest/gtest.h>

#include "metrics/stats.h"
#include "trace/trace.h"

namespace sm::trace {
namespace {

TEST(RingBuffer, FillsThenOverwritesOldest) {
  RingBuffer<int> ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) ring.push(i);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring[0], 0);
  EXPECT_EQ(ring[3], 3);

  // Two more: 0 and 1 fall off, order stays oldest-first.
  ring.push(4);
  ring.push(5);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 2u);
  EXPECT_EQ(ring[0], 2);
  EXPECT_EQ(ring[1], 3);
  EXPECT_EQ(ring[2], 4);
  EXPECT_EQ(ring[3], 5);
}

TEST(RingBuffer, WrapsManyTimes) {
  RingBuffer<int> ring(3);
  for (int i = 0; i < 100; ++i) ring.push(i);
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.dropped(), 97u);
  EXPECT_EQ(ring[0], 97);
  EXPECT_EQ(ring[2], 99);
}

TEST(RingBuffer, ZeroCapacityDiscardsEverything) {
  RingBuffer<int> ring(0);
  ring.push(1);
  ring.push(2);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(RingBuffer, ClearResetsDropCount) {
  RingBuffer<int> ring(2);
  for (int i = 0; i < 5; ++i) ring.push(i);
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.dropped(), 0u);
  ring.push(7);
  EXPECT_EQ(ring[0], 7);
}

TEST(TraceSink, DisabledSinkRecordsNothing) {
  TraceSink sink;
  EXPECT_FALSE(sink.enabled());
  sink.record(EventKind::kTrap, 0x1000);
  sink.charge(Category::kExec, 100);
  EXPECT_TRUE(sink.events().empty());
  EXPECT_EQ(sink.summary().total_cycles, 0u);
}

TEST(TraceSink, StampsEventsWithStatsClockAndPid) {
  metrics::Stats stats;
  TraceSink sink;
  sink.enable({16});
  sink.set_stats(&stats);
  sink.set_current_pid(3);
  stats.cycles = 1234;
  sink.record(EventKind::kSyscall, 0x8048000, 14);
  stats.cycles = 5678;
  sink.set_current_pid(4);
  sink.record(EventKind::kContextSwitch, 0, 3);

  ASSERT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.events()[0].cycles, 1234u);
  EXPECT_EQ(sink.events()[0].pid, 3u);
  EXPECT_EQ(sink.events()[0].info, 14u);
  EXPECT_EQ(sink.events()[1].cycles, 5678u);
  EXPECT_EQ(sink.events()[1].pid, 4u);
}

TEST(TraceSink, SummaryCountsOverflowedEvents) {
  metrics::Stats stats;
  TraceSink sink;
  sink.enable({8});
  sink.set_stats(&stats);
  for (int i = 0; i < 20; ++i) {
    stats.cycles = static_cast<u64>(i);
    sink.record(EventKind::kSyscall);
  }
  const ProfileSummary s = sink.summary();
  EXPECT_EQ(sink.events().size(), 8u);
  EXPECT_EQ(s.events_dropped, 12u);
  EXPECT_EQ(s.events_recorded, 20u);  // survivors + dropped
  EXPECT_EQ(s.ring_capacity, 8u);
  // The profiler saw all 20, not just the ring survivors.
  EXPECT_EQ(s.event_counts[static_cast<std::size_t>(EventKind::kSyscall)],
            20u);
}

}  // namespace
}  // namespace sm::trace
