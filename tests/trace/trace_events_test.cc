// End-to-end trace-layer tests against a real kernel run: event ordering
// across fork + COW + split resolution, ring-overflow accounting at
// simulation scale, and the billing-identity invariant (tracing observes,
// never bills — simulated stats are identical with tracing on or off).
#include <gtest/gtest.h>

#include <unordered_map>

#include "support/guest_runner.h"
#include "trace/trace.h"

namespace sm {
namespace {

using core::ProtectionMode;
using trace::EventKind;

// fork + COW write + split-protected execution: exercises every event
// family in one program.
const char* kForkCowBody = R"(
_start:
  movi r4, shared
  movi r5, 42
  store [r4], r5
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz child
  ; parent: overwrite (breaks COW), then collect the child's verdict
  movi r4, shared
  movi r5, 1
  store [r4], r5
  mov r1, r0
  movi r0, SYS_WAITPID
  syscall
  mov r1, r0
  addi r1, 100
  movi r0, SYS_EXIT
  syscall
child:
  movi r0, SYS_YIELD      ; let the parent write first
  syscall
  movi r0, SYS_YIELD
  syscall
  movi r4, shared
  load r5, [r4]
  mov r1, r5              ; 42 if COW isolated us
  movi r0, SYS_EXIT
  syscall
.data
shared: .word 0
)";

testing::GuestRun run_traced(const char* body,
                             arch::u32 ring_capacity = 1u << 16) {
  kernel::KernelConfig cfg;
  cfg.trace = true;
  cfg.trace_ring_capacity = ring_capacity;
  auto r = testing::start_guest(body, ProtectionMode::kSplitAll,
                                core::ResponseMode::kBreak, cfg);
  r.k->run(50'000'000);
  return r;
}

#if SM_TRACE_ENABLED

TEST(TraceEvents, ForkCowSplitRunEmitsOrderedEvents) {
  auto r = run_traced(kForkCowBody);
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.proc().exit_code, 142u);  // 100 + child's 42

  const trace::TraceSink* sink = r.k->trace_sink();
  ASSERT_NE(sink, nullptr);
  const auto& events = sink->events();
  ASSERT_GT(events.size(), 0u);
  EXPECT_EQ(events.dropped(), 0u);

  // The simulated clock never runs backwards across the stream.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].cycles, events[i].cycles) << "at event " << i;
  }

  const auto& counts = sink->summary().event_counts;
  auto count = [&](EventKind k) {
    return counts[static_cast<std::size_t>(k)];
  };
  // Every family this program must touch showed up.
  EXPECT_GT(count(EventKind::kTrap), 0u);
  EXPECT_GT(count(EventKind::kTlbFill), 0u);
  EXPECT_GT(count(EventKind::kTlbFlush), 0u);
  EXPECT_GT(count(EventKind::kSplitItlbLoad), 0u);
  EXPECT_GT(count(EventKind::kSingleStepOpen), 0u);
  EXPECT_GT(count(EventKind::kDemandPage), 0u);
  EXPECT_GT(count(EventKind::kCowCopy), 0u);
  EXPECT_GT(count(EventKind::kSyscall), 0u);
  EXPECT_GT(count(EventKind::kContextSwitch), 0u);

  // Event counts agree with the simulated counters they mirror.
  const metrics::Stats& stats = r.k->stats();
  EXPECT_EQ(count(EventKind::kContextSwitch), stats.context_switches);
  EXPECT_EQ(count(EventKind::kCowCopy), stats.cow_copies);
  EXPECT_EQ(count(EventKind::kSplitItlbLoad), stats.split_itlb_loads);
  EXPECT_EQ(count(EventKind::kSplitDtlbLoad), stats.split_dtlb_loads);
  EXPECT_EQ(count(EventKind::kDemandPage), stats.demand_pages);

  // Algorithm 2 windows are properly bracketed per process: never two
  // opens without a close, never a close without an open.
  std::unordered_map<arch::u32, int> depth;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const trace::Event& e = events[i];
    if (e.kind == EventKind::kSingleStepOpen) {
      EXPECT_EQ(depth[e.pid], 0) << "double-open at event " << i;
      ++depth[e.pid];
    } else if (e.kind == EventKind::kSingleStepClose) {
      EXPECT_EQ(depth[e.pid], 1) << "unmatched close at event " << i;
      --depth[e.pid];
    }
  }

  // The first split I-TLB load resolves through a single-step window: an
  // open by the same pid follows it before any close intervenes.
  std::size_t first_load = events.size();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == EventKind::kSplitItlbLoad) {
      first_load = i;
      break;
    }
  }
  ASSERT_LT(first_load, events.size());
  bool window_opened = false;
  for (std::size_t i = first_load + 1; i < events.size(); ++i) {
    if (events[i].kind == EventKind::kSingleStepOpen &&
        events[i].pid == events[first_load].pid) {
      window_opened = true;
      break;
    }
    if (events[i].kind == EventKind::kSingleStepClose) break;
  }
  EXPECT_TRUE(window_opened);
}

TEST(TraceEvents, TinyRingOverflowsButKeepsAccounting) {
  auto r = run_traced(kForkCowBody, 16);
  ASSERT_TRUE(r.k->all_exited());
  const trace::TraceSink* sink = r.k->trace_sink();
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->events().size(), 16u);
  EXPECT_GT(sink->events().dropped(), 0u);
  const trace::ProfileSummary s = sink->summary();
  EXPECT_EQ(s.events_recorded, 16u + s.events_dropped);
  // Profiling is ring-independent: totals come from the full stream.
  EXPECT_GT(s.total_cycles, 0u);
}

TEST(TraceEvents, SummaryAttributesTheRunsCycles) {
  auto r = run_traced(kForkCowBody);
  const trace::ProfileSummary s = r.k->trace_sink()->summary();
  // Everything the cost model billed is attributed somewhere.
  EXPECT_EQ(s.total_cycles, r.k->stats().cycles);
  EXPECT_GT(s.category_cycles(trace::Category::kSplitItlbLoad), 0u);
  EXPECT_GT(s.category_cycles(trace::Category::kContextSwitch), 0u);
  EXPECT_GT(s.category_cycles(trace::Category::kCowCopy), 0u);
}

#else  // !SM_TRACE_ENABLED

TEST(TraceEvents, CompiledOutSinkIsNull) {
  auto r = run_traced(kForkCowBody);
  ASSERT_TRUE(r.k->all_exited());
  EXPECT_EQ(r.k->trace_sink(), nullptr);
}

#endif

// Billing identity, the invariant the whole layer stands on: a traced run
// and an untraced run of the same program report identical simulated
// stats, including cycles. (The fuzz oracle sweeps this per engine; this
// is the deterministic tier-1 anchor.)
TEST(TraceBillingIdentity, TracedAndUntracedStatsAreIdentical) {
  kernel::KernelConfig off;
  auto base = testing::start_guest(kForkCowBody, ProtectionMode::kSplitAll,
                                   core::ResponseMode::kBreak, off);
  base.k->run(50'000'000);

  auto traced = run_traced(kForkCowBody);

  ASSERT_TRUE(base.k->all_exited());
  ASSERT_TRUE(traced.k->all_exited());
  EXPECT_EQ(base.proc().exit_code, traced.proc().exit_code);
  EXPECT_EQ(base.console(), traced.console());

  const metrics::Stats& a = base.k->stats();
  const metrics::Stats& b = traced.k->stats();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.itlb_hits, b.itlb_hits);
  EXPECT_EQ(a.itlb_misses, b.itlb_misses);
  EXPECT_EQ(a.dtlb_hits, b.dtlb_hits);
  EXPECT_EQ(a.dtlb_misses, b.dtlb_misses);
  EXPECT_EQ(a.tlb_flushes, b.tlb_flushes);
  EXPECT_EQ(a.hardware_walks, b.hardware_walks);
  EXPECT_EQ(a.page_faults, b.page_faults);
  EXPECT_EQ(a.split_itlb_loads, b.split_itlb_loads);
  EXPECT_EQ(a.split_dtlb_loads, b.split_dtlb_loads);
  EXPECT_EQ(a.split_dtlb_fallbacks, b.split_dtlb_fallbacks);
  EXPECT_EQ(a.soft_tlb_fills, b.soft_tlb_fills);
  EXPECT_EQ(a.single_steps, b.single_steps);
  EXPECT_EQ(a.demand_pages, b.demand_pages);
  EXPECT_EQ(a.cow_copies, b.cow_copies);
  EXPECT_EQ(a.syscalls, b.syscalls);
  EXPECT_EQ(a.invalid_opcode_faults, b.invalid_opcode_faults);
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(a.injections_detected, b.injections_detected);
}

}  // namespace
}  // namespace sm
