// Regression guards for the paper-shape results: if a future change to the
// cost model, kernel, or engines drifts a headline figure out of its band,
// these fail before the bench output quietly changes.
#include <gtest/gtest.h>

#include "workloads/workload.h"

namespace sm::workloads {
namespace {

TEST(FigureBands, Gzip) {
  const double n = normalized(run_gzip(Protection::none()),
                              run_gzip(Protection::split_all()));
  EXPECT_GT(n, 0.82);  // paper ~0.87
  EXPECT_LT(n, 0.96);
}

TEST(FigureBands, Nbench) {
  const double n = normalized(run_nbench(Protection::none()),
                              run_nbench(Protection::split_all()));
  EXPECT_GT(n, 0.90);  // paper ~0.97
  EXPECT_LT(n, 0.995);
}

TEST(FigureBands, PipeCtxswWorstCase) {
  const double n =
      normalized(run_unixbench(UnixBench::kPipeContextSwitch,
                               Protection::none()),
                 run_unixbench(UnixBench::kPipeContextSwitch,
                               Protection::split_all()));
  EXPECT_LT(n, 0.55);  // paper: at or below ~0.5
  EXPECT_GT(n, 0.30);
}

TEST(FigureBands, Apache32KB) {
  WebserverConfig cfg;
  cfg.response_bytes = 32 * 1024;
  const double n = normalized(run_webserver(Protection::none(), cfg).base,
                              run_webserver(Protection::split_all(), cfg).base);
  EXPECT_GT(n, 0.84);  // paper ~0.89
  EXPECT_LT(n, 0.95);
}

TEST(FigureBands, Apache1KBStress) {
  WebserverConfig cfg;
  cfg.response_bytes = 1024;
  const double n = normalized(run_webserver(Protection::none(), cfg).base,
                              run_webserver(Protection::split_all(), cfg).base);
  EXPECT_LT(n, 0.55);  // paper: at or below ~0.5
}

TEST(FigureBands, TenPercentSplitRecovers) {
  const auto base =
      run_unixbench(UnixBench::kPipeContextSwitch, Protection::none());
  double sum = 0;
  for (arch::u32 seed = 0; seed < 4; ++seed) {
    sum += normalized(base, run_unixbench(UnixBench::kPipeContextSwitch,
                                          Protection::fraction(10, seed)));
  }
  const double n = sum / 4;
  EXPECT_GT(n, 0.70);  // paper ~0.80 at 10%
}

TEST(FigureBands, DeterministicRuns) {
  // The whole simulation is deterministic: identical configs give
  // identical cycle counts (what makes every figure reproducible).
  const auto a = run_gzip(Protection::split_all(), 64);
  const auto b = run_gzip(Protection::split_all(), 64);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.stats.page_faults, b.stats.page_faults);
}

}  // namespace
}  // namespace sm::workloads
