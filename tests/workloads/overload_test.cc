// Overload workload sanity: the open-loop server completes under every
// engine, degrades gracefully (sheds + retries, never wedges) past
// saturation, and is a pure function of its config.
#include <gtest/gtest.h>

#include "workloads/workload.h"

namespace sm::workloads {
namespace {

OverloadConfig quick_cfg() {
  OverloadConfig cfg;
  cfg.workers = 8;
  cfg.arrivals = 80;
  cfg.offered_rpmc = 10.0;  // far below capacity: nothing should shed
  return cfg;
}

TEST(Overload, CompletesCleanlyAtLowLoadUnderBothEngines) {
  for (const auto prot : {Protection::none(), Protection::split_all()}) {
    const auto r = run_overload_load(prot, quick_cfg());
    ASSERT_TRUE(r.base.completed) << prot.label();
    EXPECT_EQ(r.arrivals_issued, 80u) << prot.label();
    EXPECT_EQ(r.completed, 80u) << prot.label();
    EXPECT_EQ(r.shed_queue, 0u) << prot.label();
    EXPECT_EQ(r.shed_deadline, 0u) << prot.label();
    EXPECT_EQ(r.worker_drops, 0u) << prot.label();
    EXPECT_EQ(r.lost_responses, 0u) << prot.label();
    EXPECT_EQ(r.latency.count(), 80u) << prot.label();
    EXPECT_GT(r.goodput_rpmc, 0.0) << prot.label();
  }
}

TEST(Overload, ShedsButNeverWedgesPastSaturation) {
  OverloadConfig cfg = quick_cfg();
  cfg.arrivals = 200;
  cfg.offered_rpmc = 400.0;  // far past capacity
  cfg.qdepth = 16;
  cfg.deadline = 100000;
  for (const auto prot : {Protection::none(), Protection::split_all()}) {
    const auto r = run_overload_load(prot, cfg);
    ASSERT_TRUE(r.base.completed) << prot.label();
    EXPECT_EQ(r.arrivals_issued, 200u) << prot.label();
    // Admission control must have kicked in, and whatever was admitted
    // must be accounted for: completed plus drops covers the stream.
    EXPECT_GT(r.shed_queue + r.shed_deadline, 0u) << prot.label();
    EXPECT_GT(r.completed, 0u) << prot.label();
    EXPECT_LE(r.completed, 200u) << prot.label();
    // Goodput cannot exceed the offered rate actually sustained.
    const double offered_effective = static_cast<double>(r.arrivals_issued) *
                                     1e6 /
                                     static_cast<double>(r.base.cycles);
    EXPECT_LE(r.goodput_rpmc, offered_effective + 1e-9) << prot.label();
  }
}

TEST(Overload, SmallBacklogForcesRetries) {
  OverloadConfig cfg = quick_cfg();
  cfg.arrivals = 150;
  cfg.offered_rpmc = 300.0;
  cfg.backlog = 1;  // nearly every simultaneous delivery collides
  cfg.qdepth = 32;
  const auto r = run_overload_load(Protection::none(), cfg);
  ASSERT_TRUE(r.base.completed);
  EXPECT_GT(r.retries, 0u);
  EXPECT_GT(r.base.stats.sock_refused, 0u);
  EXPECT_GT(r.base.stats.sock_backlog_peak, 0u);
  EXPECT_GT(r.base.stats.sleeps, 0u);  // backoff went through SYS_SLEEP
}

TEST(Overload, RunIsAPureFunctionOfItsConfig) {
  OverloadConfig cfg = quick_cfg();
  cfg.arrivals = 60;
  cfg.offered_rpmc = 120.0;
  const auto a = run_overload_load(Protection::split_all(), cfg);
  const auto b = run_overload_load(Protection::split_all(), cfg);
  ASSERT_TRUE(a.base.completed);
  EXPECT_EQ(a.base.cycles, b.base.cycles);
  EXPECT_EQ(a.base.stats.instructions, b.base.stats.instructions);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.shed_queue, b.shed_queue);
  EXPECT_EQ(a.shed_deadline, b.shed_deadline);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.lost_responses, b.lost_responses);
  EXPECT_EQ(a.latency.buckets(), b.latency.buckets());
}

TEST(Overload, FourCoreRunIsDeterministicToo) {
  OverloadConfig cfg = quick_cfg();
  cfg.arrivals = 60;
  cfg.offered_rpmc = 120.0;
  cfg.cores = 4;
  const auto a = run_overload_load(Protection::split_all(), cfg);
  const auto b = run_overload_load(Protection::split_all(), cfg);
  ASSERT_TRUE(a.base.completed);
  ASSERT_TRUE(b.base.completed);
  EXPECT_EQ(a.base.cycles, b.base.cycles);
  EXPECT_EQ(a.base.stats.instructions, b.base.stats.instructions);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.latency.buckets(), b.latency.buckets());
}

TEST(Overload, TimerAndSocketCountersSurface) {
  OverloadConfig cfg = quick_cfg();
  const auto r = run_overload_load(Protection::none(), cfg);
  ASSERT_TRUE(r.base.completed);
  // Every completion rode a connect/accept pair.
  EXPECT_GE(r.base.stats.sock_connects, r.completed);
  EXPECT_GE(r.base.stats.sock_accepts, r.completed);
  // The master's event loop ticks on deadline timers while idle.
  EXPECT_GT(r.base.stats.timer_fires, 0u);
  EXPECT_GT(r.base.stats.wait_timeouts, 0u);
}

}  // namespace
}  // namespace sm::workloads
