// Workload sanity: every benchmark completes under every engine, split
// memory costs cycles but never correctness, and the figure-level
// relationships hold qualitatively (fast checks; the bench binaries do the
// full sweeps).
#include <gtest/gtest.h>

#include "workloads/internal.h"
#include "workloads/workload.h"

namespace sm::workloads {
namespace {

TEST(Workloads, GzipCompletesAndSlowsUnderSplit) {
  const auto base = run_gzip(Protection::none(), /*kilobytes=*/64);
  const auto split = run_gzip(Protection::split_all(), /*kilobytes=*/64);
  ASSERT_TRUE(base.completed);
  ASSERT_TRUE(split.completed);
  EXPECT_EQ(base.stats.instructions, split.stats.instructions);
  EXPECT_GT(split.cycles, base.cycles);
}

TEST(Workloads, NbenchCompletesAndSlowsUnderSplit) {
  const auto base = run_nbench(Protection::none());
  const auto split = run_nbench(Protection::split_all());
  ASSERT_TRUE(base.completed);
  ASSERT_TRUE(split.completed);
  const double n = normalized(base, split);
  EXPECT_GT(n, 0.85);  // compute-bound: small overhead
  EXPECT_LT(n, 1.0);
}

class UnixBenchAll : public ::testing::TestWithParam<UnixBench> {};

TEST_P(UnixBenchAll, CompletesUnderBothEngines) {
  // Scaled-down iteration counts keep the test suite fast.
  const u32 iters = GetParam() == UnixBench::kPipeContextSwitch ? 50 : 20;
  const auto base = run_unixbench(GetParam(), Protection::none(), iters);
  const auto split =
      run_unixbench(GetParam(), Protection::split_all(), iters);
  EXPECT_TRUE(base.completed) << to_string(GetParam());
  EXPECT_TRUE(split.completed) << to_string(GetParam());
  EXPECT_GE(split.cycles, base.cycles);
}

INSTANTIATE_TEST_SUITE_P(Suite, UnixBenchAll,
                         ::testing::ValuesIn(kAllUnixBench),
                         [](const ::testing::TestParamInfo<UnixBench>& info) {
                           std::string n = to_string(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(Workloads, PipeCtxswIsTheWorstCase) {
  const auto ctx_base =
      run_unixbench(UnixBench::kPipeContextSwitch, Protection::none(), 300);
  const auto ctx_split = run_unixbench(UnixBench::kPipeContextSwitch,
                                       Protection::split_all(), 300);
  const auto arith_base =
      run_unixbench(UnixBench::kArithmetic, Protection::none(), 5000);
  const auto arith_split =
      run_unixbench(UnixBench::kArithmetic, Protection::split_all(), 5000);
  EXPECT_LT(normalized(ctx_base, ctx_split),
            normalized(arith_base, arith_split) - 0.2);
}

TEST(Workloads, WebserverServesEveryByte) {
  WebserverConfig cfg;
  cfg.requests = 12;
  cfg.response_bytes = 4096;
  for (const auto prot : {Protection::none(), Protection::split_all()}) {
    const auto r = run_webserver(prot, cfg);
    EXPECT_TRUE(r.base.completed) << prot.label();
    EXPECT_EQ(r.bytes_served, 12u * 4096u) << prot.label();
  }
}

TEST(Workloads, WebserverSmallPagesHurtMore) {
  WebserverConfig small;
  small.requests = 16;
  small.response_bytes = 1024;
  WebserverConfig large;
  large.requests = 16;
  large.response_bytes = 64 * 1024;
  const double n_small =
      normalized(run_webserver(Protection::none(), small).base,
                 run_webserver(Protection::split_all(), small).base);
  const double n_large =
      normalized(run_webserver(Protection::none(), large).base,
                 run_webserver(Protection::split_all(), large).base);
  EXPECT_LT(n_small, n_large);  // Fig. 8's slope
}

TEST(Workloads, FractionInterpolatesBetweenExtremes) {
  const auto base =
      run_unixbench(UnixBench::kPipeContextSwitch, Protection::none(), 300);
  const auto full = run_unixbench(UnixBench::kPipeContextSwitch,
                                  Protection::split_all(), 300);
  const auto half = run_unixbench(UnixBench::kPipeContextSwitch,
                                  Protection::fraction(50), 300);
  EXPECT_GE(half.cycles, base.cycles);
  EXPECT_LE(half.cycles, full.cycles);
}

TEST(Workloads, ProtectionLabels) {
  EXPECT_EQ(Protection::none().label(), "none");
  EXPECT_EQ(Protection::split_all().label(), "split-all");
  EXPECT_EQ(Protection::fraction(25).label(), "split-25%");
}

TEST(Workloads, DataMemoBillingIdentityAtKernelLevel) {
  // End-to-end billing identity for the data-translation memo: a full
  // guest run (faults, fork, context switches, split reloads included)
  // must produce identical simulated numbers with the memo disabled.
  const char* kProg = R"(
_start:
  movi r0, SYS_FORK
  syscall
  cmpi r0, 0
  jz work
  mov r1, r0
  movi r0, SYS_WAITPID
  syscall
work:
  movi r5, 24
  movi r4, buf
pagel:
  movi r7, 16
inner:
  store [r4], r7
  load r6, [r4]
  addi r4, 4
  addi r7, -1
  cmpi r7, 0
  jnz inner
  addi r4, 4032
  movi r0, SYS_YIELD
  syscall
  addi r5, -1
  cmpi r5, 0
  jnz pagel
  movi r0, SYS_EXIT
  movi r1, 0
  syscall
.bss
buf: .space 98304
)";
  auto run = [&](bool memo_on) {
    return internal::run_program(
        "memo-identity", kProg, Protection::split_all(), {}, 2'000'000'000,
        [memo_on](kernel::Kernel& k) {
          k.mmu().set_data_memo_enabled(memo_on);
        });
  };
  const auto with_memo = run(true);
  const auto without_memo = run(false);
  ASSERT_TRUE(with_memo.completed);
  ASSERT_TRUE(without_memo.completed);
  EXPECT_GT(with_memo.stats.data_fastpath_hits, 0u);
  EXPECT_EQ(without_memo.stats.data_fastpath_hits, 0u);
  EXPECT_EQ(with_memo.cycles, without_memo.cycles);
  EXPECT_EQ(with_memo.stats.instructions, without_memo.stats.instructions);
  EXPECT_EQ(with_memo.stats.dtlb_hits, without_memo.stats.dtlb_hits);
  EXPECT_EQ(with_memo.stats.dtlb_misses, without_memo.stats.dtlb_misses);
  EXPECT_EQ(with_memo.stats.itlb_hits, without_memo.stats.itlb_hits);
  EXPECT_EQ(with_memo.stats.itlb_misses, without_memo.stats.itlb_misses);
  EXPECT_EQ(with_memo.stats.page_faults, without_memo.stats.page_faults);
  EXPECT_EQ(with_memo.stats.hardware_walks,
            without_memo.stats.hardware_walks);
  EXPECT_EQ(with_memo.stats.split_dtlb_loads,
            without_memo.stats.split_dtlb_loads);
  EXPECT_EQ(with_memo.stats.split_itlb_loads,
            without_memo.stats.split_itlb_loads);
  EXPECT_EQ(with_memo.stats.context_switches,
            without_memo.stats.context_switches);
  EXPECT_EQ(with_memo.stats.cow_copies, without_memo.stats.cow_copies);
  EXPECT_EQ(with_memo.stats.syscalls, without_memo.stats.syscalls);
}

TEST(Workloads, NormalizedHandlesDegenerateInputs) {
  WorkloadResult a;
  WorkloadResult b;
  EXPECT_EQ(normalized(a, b), 0.0);
  a.cycles = 100;
  b.cycles = 200;
  EXPECT_DOUBLE_EQ(normalized(a, b), 0.5);
  b.sim_time = 400;  // sim_time overrides raw cycles when present
  EXPECT_DOUBLE_EQ(normalized(a, b), 0.25);
}

}  // namespace
}  // namespace sm::workloads
