#!/usr/bin/env python3
"""Run the microbenchmark suite and write BENCH_microbench.json at the repo
root, so the perf trajectory of the simulator hot paths is tracked across
PRs.

Usage:
    tools/bench_json.py [--build-dir build] [--min-time 0.1]
                        [--filter REGEX] [--out BENCH_microbench.json]

The emitter wraps google-benchmark's --benchmark_out JSON (schema unchanged,
so any benchmark-diff tooling keeps working) and atomically replaces the
output file only after a successful run.
"""
import argparse
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build",
                    help="CMake build directory (default: build)")
    ap.add_argument("--min-time", default="0.1",
                    help="--benchmark_min_time per case (default: 0.1)")
    ap.add_argument("--filter", default="",
                    help="--benchmark_filter regex (default: all cases)")
    ap.add_argument("--out", default="BENCH_microbench.json",
                    help="output path, relative to the repo root")
    args = ap.parse_args()

    exe = os.path.join(REPO_ROOT, args.build_dir, "bench", "microbench")
    if not os.path.exists(exe):
        print(f"error: {exe} not found — build the `microbench` target first "
              f"(cmake --build {args.build_dir} --target microbench)",
              file=sys.stderr)
        return 1

    out_path = os.path.join(REPO_ROOT, args.out)
    tmp_path = out_path + ".tmp"
    cmd = [exe,
           f"--benchmark_out={tmp_path}",
           "--benchmark_out_format=json",
           f"--benchmark_min_time={args.min_time}"]
    if args.filter:
        cmd.append(f"--benchmark_filter={args.filter}")

    print("+", " ".join(cmd))
    proc = subprocess.run(cmd)
    if proc.returncode != 0:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        return proc.returncode
    os.replace(tmp_path, out_path)
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
