#!/usr/bin/env python3
"""Benchmark JSON emitters: track the simulator's perf trajectory across PRs.

Two modes, two tracked files at the repo root:

  tools/bench_json.py
      Runs the google-benchmark microbench suite and writes
      BENCH_microbench.json (google-benchmark's own --benchmark_out schema,
      unchanged, so benchmark-diff tooling keeps working).

  tools/bench_json.py --figures [--jobs N] [--quick]
      Runs every figure/table/ablation binary through the parallel
      experiment runner with `--json`, and merges the per-bench sidecars
      into BENCH_figures.json:

          {
            "jobs": <runner threads per bench>,
            "total_wall_seconds": <whole battery>,
            "figures": {
              "<bench>": { "name", "jobs", "wall_seconds",
                           "points": [ {"label", "wall_seconds",
                                        "metrics": {...}} ] },
              ...
            }
          }

      Simulated metrics in "points" are jobs-invariant (the runner's
      determinism contract); only the wall_seconds fields change with host
      parallelism.

Both modes atomically replace the output file only after a successful run.
"""
import argparse
import json
import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Keep in sync with SM_FIGURE_BENCHES in bench/CMakeLists.txt — except
# server_load, whose quick and full point sets differ in scale (64 vs 1000
# workers) and so cannot share one drift reference; it is tracked in its
# own BENCH_server.json (see tools/check_figures.py --server).
FIGURE_BENCHES = [
    "table1_wilander",
    "table2_realworld",
    "fig5_response_modes",
    "fig6_normalized",
    "fig7_ctxsw_stress",
    "fig8_apache_pagesize",
    "fig9_split_fraction",
    "ablation_nx_vs_split",
    "ablation_portability",
    "ablation_tlb_geometry",
]

# Benches whose non-zero exit codes are verdicts, not failures (table1
# exits non-zero unless every applicable attack cell is foiled — which full
# runs are, but --quick subsets need not be).
VERDICT_EXITS = {"table1_wilander", "table2_realworld", "ablation_nx_vs_split"}


def run_micro(args) -> int:
    exe = os.path.join(REPO_ROOT, args.build_dir, "bench", "microbench")
    if not os.path.exists(exe):
        print(f"error: {exe} not found — build the `microbench` target first "
              f"(cmake --build {args.build_dir} --target microbench)",
              file=sys.stderr)
        return 1

    out_path = os.path.join(REPO_ROOT, args.out or "BENCH_microbench.json")
    tmp_path = out_path + ".tmp"
    cmd = [exe,
           f"--benchmark_out={tmp_path}",
           "--benchmark_out_format=json",
           f"--benchmark_min_time={args.min_time}"]
    if args.filter:
        cmd.append(f"--benchmark_filter={args.filter}")

    print("+", " ".join(cmd))
    proc = subprocess.run(cmd)
    if proc.returncode != 0:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        return proc.returncode
    os.replace(tmp_path, out_path)
    print(f"wrote {out_path}")
    return 0


def run_figures(args) -> int:
    bench_dir = os.path.join(REPO_ROOT, args.build_dir, "bench")
    missing = [b for b in FIGURE_BENCHES
               if not os.path.exists(os.path.join(bench_dir, b))]
    if missing:
        print(f"error: missing figure binaries {missing} in {bench_dir} — "
              f"build them first (cmake --build {args.build_dir})",
              file=sys.stderr)
        return 1

    figures = {}
    t0 = time.monotonic()
    for bench in FIGURE_BENCHES:
        exe = os.path.join(bench_dir, bench)
        sidecar = os.path.join(bench_dir, f"{bench}.points.json")
        cmd = [exe, f"--json={sidecar}", "--no-progress"]
        if args.jobs:
            cmd.append(f"--jobs={args.jobs}")
        if args.quick:
            cmd.append("--quick")
        print("+", " ".join(cmd))
        proc = subprocess.run(cmd, stdout=subprocess.DEVNULL)
        if proc.returncode != 0 and bench not in VERDICT_EXITS:
            print(f"error: {bench} exited {proc.returncode}", file=sys.stderr)
            return proc.returncode
        with open(sidecar) as f:
            figures[bench] = json.load(f)
        os.unlink(sidecar)
    total = time.monotonic() - t0

    doc = {
        "jobs": figures[FIGURE_BENCHES[0]]["jobs"],
        "total_wall_seconds": round(total, 3),
        "figures": figures,
    }
    out_path = os.path.join(REPO_ROOT, args.out or "BENCH_figures.json")
    tmp_path = out_path + ".tmp"
    with open(tmp_path, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    os.replace(tmp_path, out_path)
    print(f"wrote {out_path} ({len(figures)} benches, "
          f"{total:.1f}s wall at jobs={doc['jobs']})")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build",
                    help="CMake build directory (default: build)")
    ap.add_argument("--out", default=None,
                    help="output path relative to the repo root (default: "
                         "BENCH_microbench.json / BENCH_figures.json)")
    ap.add_argument("--figures", action="store_true",
                    help="run the figure binaries and merge their --json "
                         "sidecars into BENCH_figures.json")
    ap.add_argument("--jobs", type=int, default=0,
                    help="--jobs for each figure bench (default: the "
                         "runner's hardware_concurrency autodetect)")
    ap.add_argument("--quick", action="store_true",
                    help="reduced point sets (figure mode only)")
    ap.add_argument("--min-time", default="0.1",
                    help="--benchmark_min_time per case (micro mode)")
    ap.add_argument("--filter", default="",
                    help="--benchmark_filter regex (micro mode)")
    args = ap.parse_args()
    return run_figures(args) if args.figures else run_micro(args)


if __name__ == "__main__":
    sys.exit(main())
