#!/usr/bin/env python3
"""Guard BENCH_figures.json against simulated-figure drift.

The figure battery is deterministic: regenerating it (tools/bench_json.py
--figures) must reproduce the committed simulated metrics exactly, at any
--jobs and on any host. This script compares a freshly generated document
— typically produced with --quick, whose point sets are label subsets of
the full battery — against the committed one on the intersection of point
labels per bench, comparing only the "metrics" maps. Host-time fields
(wall_seconds, total_wall_seconds, jobs) legitimately vary and are
ignored.

Exit 0: every shared point's metrics are identical.
Exit 1: a metric drifted, a bench disappeared, or nothing overlapped.

With --microbench, additionally (or instead) checks that the committed
BENCH_microbench.json carries every expected benchmark label — the
perf-trajectory record must not silently lose a benchmark when the suite
is regenerated on a machine with an older binary.

With --server, checks the committed BENCH_server.json (the server-load
throughput + tail-latency record, schema: a "quick", a "full" and an
"overload" section, each a runner --json document): every section must
carry the expected point labels with the full metric set and completed
runs. Passing --fresh-server with a freshly generated `server_load
--quick --json` sidecar additionally diffs its simulated metrics against
the committed "quick" section exactly — the same drift guard the figure
battery gets (the "full" 10^5-request sweep is too slow for CI and is
label-checked only). --fresh-overload does the same for an
`overload_sweep --quick --json` sidecar against the committed "overload"
section.

Usage:
  tools/check_figures.py --fresh fresh.json [--committed BENCH_figures.json]
  tools/check_figures.py --microbench [BENCH_microbench.json]
  tools/check_figures.py --server [BENCH_server.json] [--fresh-server q.json]
                         [--fresh-overload ov.json]
"""
import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Every benchmark the committed BENCH_microbench.json must carry. Grows
# with the simulator's fast-path inventory; shrinking it is a red flag.
MICROBENCH_LABELS = [
    "BM_TlbLookupHit",
    "BM_TlbInsertEvict",
    "BM_PageTableWalk",
    "BM_CpuStepArithmetic",
    "BM_CpuStepCached",
    "BM_BlockExec",
    "BM_BlockChainInvalidate",
    "BM_FetchFastPath",
    "BM_DataMemo",
    "BM_DecodeCacheInvalidate",
    "BM_SplitFaultProtocol",
    "BM_Sha256_4K",
    "BM_AssembleGuestLibc",
]


# Point labels and metrics every BENCH_server.json section must carry.
# The quick set additionally carries the 4-core SMP leg (per-core split
# TLBs + IPI shootdown); the 10^5-request full sweep stays single-core.
# The "overload" section is the open-loop overload_sweep --quick record:
# offered-load multiples of measured capacity, split on/off, plus the
# saturated 4-core leg.
SERVER_POINT_LABELS = {
    "quick": ["no-split", "split-all", "split-smp4"],
    "full": ["no-split", "split-all"],
    "overload": ["none-0.5x", "none-2x", "split-0.5x", "split-2x",
                 "split-2x-smp4"],
}
SERVER_METRICS = ["throughput_rpmc", "p50", "p99", "p999", "latency_mean",
                  "cycles", "ctxsw", "completed"]
OVERLOAD_METRICS = ["offered_rpmc", "effective_rpmc", "goodput_rpmc",
                    "completed_n", "shed_queue", "shed_deadline",
                    "worker_drops", "lost_responses", "retries", "p50",
                    "p99", "cycles", "timer_fires", "sock_refused",
                    "completed"]
SECTION_METRICS = {
    "quick": SERVER_METRICS,
    "full": SERVER_METRICS,
    "overload": OVERLOAD_METRICS,
}


def load(path):
    with open(path) as f:
        return json.load(f)


def check_microbench(path) -> int:
    doc = load(path)
    names = {b["name"].split("/")[0] for b in doc.get("benchmarks", [])}
    missing = [l for l in MICROBENCH_LABELS if l not in names]
    if missing:
        print(f"MICROBENCH LABELS MISSING from {path}: {missing}",
              file=sys.stderr)
        return 1
    print(f"microbench OK: all {len(MICROBENCH_LABELS)} expected labels "
          f"present in {path}")
    return 0


def points_by_label(bench_doc):
    return {p["label"]: p.get("metrics", {}) for p in bench_doc["points"]}


def diff_section(doc, section, fresh_path, failures):
    """Exact-diff a freshly generated sidecar against a committed section."""
    ref = points_by_label(doc[section])
    fresh = points_by_label(load(fresh_path))
    for label in SERVER_POINT_LABELS[section]:
        if label not in fresh:
            failures.append(f"fresh {section} run: point '{label}' missing")
        elif label in ref and fresh[label] != ref[label]:
            failures.append(
                f"{section}/{label}: metrics drifted\n"
                f"    fresh:     {json.dumps(fresh[label], sort_keys=True)}\n"
                f"    committed: {json.dumps(ref[label], sort_keys=True)}")


def check_server(committed_path, fresh_path=None, fresh_overload=None) -> int:
    doc = load(committed_path)
    failures = []
    for section in ("quick", "full", "overload"):
        if section not in doc:
            failures.append(f"section '{section}' missing")
            continue
        pts = points_by_label(doc[section])
        for label in SERVER_POINT_LABELS[section]:
            if label not in pts:
                failures.append(f"{section}: point '{label}' missing")
                continue
            metrics = pts[label]
            absent = [k for k in SECTION_METRICS[section] if k not in metrics]
            if absent:
                failures.append(f"{section}/{label}: metrics missing {absent}")
            elif metrics["completed"] != 1:
                failures.append(f"{section}/{label}: run did not complete")
    if fresh_path and "quick" in doc:
        diff_section(doc, "quick", fresh_path, failures)
    if fresh_overload and "overload" in doc:
        diff_section(doc, "overload", fresh_overload, failures)
    if failures:
        print(f"SERVER BENCH PROBLEMS in {committed_path}:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    checked = "labels"
    if fresh_path:
        checked += " + quick-metrics drift"
    if fresh_overload:
        checked += " + overload-metrics drift"
    print(f"server OK: {checked} checked against {committed_path}")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fresh",
                    help="freshly generated figures JSON (e.g. --quick run)")
    ap.add_argument("--committed",
                    default=os.path.join(REPO_ROOT, "BENCH_figures.json"),
                    help="committed reference (default: repo root)")
    ap.add_argument("--microbench", nargs="?",
                    const=os.path.join(REPO_ROOT, "BENCH_microbench.json"),
                    help="check BENCH_microbench.json for the expected "
                         "benchmark labels (optional path argument)")
    ap.add_argument("--server", nargs="?",
                    const=os.path.join(REPO_ROOT, "BENCH_server.json"),
                    help="check BENCH_server.json labels/completion "
                         "(optional path argument)")
    ap.add_argument("--fresh-server",
                    help="freshly generated `server_load --quick --json` "
                         "sidecar to diff against the committed quick "
                         "section (requires --server)")
    ap.add_argument("--fresh-overload",
                    help="freshly generated `overload_sweep --quick --json` "
                         "sidecar to diff against the committed overload "
                         "section (requires --server)")
    args = ap.parse_args()

    rc = 0
    if args.microbench:
        rc = check_microbench(args.microbench)
    if args.server:
        rc = check_server(args.server, args.fresh_server,
                          args.fresh_overload) or rc
    if not args.fresh:
        if not args.microbench and not args.server:
            ap.error("--fresh, --microbench or --server required")
        return rc

    fresh = load(args.fresh)["figures"]
    committed = load(args.committed)["figures"]

    failures = []
    compared = 0
    for bench, fresh_doc in sorted(fresh.items()):
        if bench not in committed:
            failures.append(f"{bench}: present in fresh run but not in the "
                            f"committed reference")
            continue
        ref_points = points_by_label(committed[bench])
        fresh_points = points_by_label(fresh_doc)
        shared = sorted(set(ref_points) & set(fresh_points))
        if not shared:
            failures.append(f"{bench}: no overlapping point labels "
                            f"(fresh: {sorted(fresh_points)[:4]}..., "
                            f"committed: {sorted(ref_points)[:4]}...)")
            continue
        for label in shared:
            if fresh_points[label] != ref_points[label]:
                failures.append(
                    f"{bench} / {label}: metrics drifted\n"
                    f"    fresh:     {json.dumps(fresh_points[label], sort_keys=True)}\n"
                    f"    committed: {json.dumps(ref_points[label], sort_keys=True)}")
            else:
                compared += 1

    # A committed bench the fresh run produced no points for is a FAILURE,
    # not a skip: silently dropping a bench from the regeneration path is
    # exactly the kind of drift this guard exists to catch (a bench that
    # stopped building, a battery list that lost an entry).
    for bench in sorted(set(committed) - set(fresh)):
        failures.append(f"{bench}: committed reference section exists but "
                        f"the fresh run produced no points for it")

    if failures:
        print(f"FIGURE DRIFT: {len(failures)} problem(s) "
              f"({compared} points matched)", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"figures OK: {compared} shared points bit-identical "
          f"across {len(fresh)} benches")
    return rc


if __name__ == "__main__":
    sys.exit(main())
