#!/usr/bin/env python3
"""Guard BENCH_figures.json against simulated-figure drift.

The figure battery is deterministic: regenerating it (tools/bench_json.py
--figures) must reproduce the committed simulated metrics exactly, at any
--jobs and on any host. This script compares a freshly generated document
— typically produced with --quick, whose point sets are label subsets of
the full battery — against the committed one on the intersection of point
labels per bench, comparing only the "metrics" maps. Host-time fields
(wall_seconds, total_wall_seconds, jobs) legitimately vary and are
ignored.

Exit 0: every shared point's metrics are identical.
Exit 1: a metric drifted, a bench disappeared, or nothing overlapped.

Usage:
  tools/check_figures.py --fresh fresh.json [--committed BENCH_figures.json]
"""
import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load(path):
    with open(path) as f:
        return json.load(f)


def points_by_label(bench_doc):
    return {p["label"]: p.get("metrics", {}) for p in bench_doc["points"]}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fresh", required=True,
                    help="freshly generated figures JSON (e.g. --quick run)")
    ap.add_argument("--committed",
                    default=os.path.join(REPO_ROOT, "BENCH_figures.json"),
                    help="committed reference (default: repo root)")
    args = ap.parse_args()

    fresh = load(args.fresh)["figures"]
    committed = load(args.committed)["figures"]

    failures = []
    compared = 0
    for bench, fresh_doc in sorted(fresh.items()):
        if bench not in committed:
            failures.append(f"{bench}: present in fresh run but not in the "
                            f"committed reference")
            continue
        ref_points = points_by_label(committed[bench])
        fresh_points = points_by_label(fresh_doc)
        shared = sorted(set(ref_points) & set(fresh_points))
        if not shared:
            failures.append(f"{bench}: no overlapping point labels "
                            f"(fresh: {sorted(fresh_points)[:4]}..., "
                            f"committed: {sorted(ref_points)[:4]}...)")
            continue
        for label in shared:
            if fresh_points[label] != ref_points[label]:
                failures.append(
                    f"{bench} / {label}: metrics drifted\n"
                    f"    fresh:     {json.dumps(fresh_points[label], sort_keys=True)}\n"
                    f"    committed: {json.dumps(ref_points[label], sort_keys=True)}")
            else:
                compared += 1

    for bench in sorted(set(committed) - set(fresh)):
        print(f"note: {bench} not in fresh run (not regenerated) — skipped")

    if failures:
        print(f"FIGURE DRIFT: {len(failures)} problem(s) "
              f"({compared} points matched)", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"figures OK: {compared} shared points bit-identical "
          f"across {len(fresh)} benches")
    return 0


if __name__ == "__main__":
    sys.exit(main())
