// Differential fuzzing campaign driver.
//
// Generates --count seeded guest programs (or replays a --corpus
// directory), runs each through the cross-engine oracle on the shared
// ExperimentRunner thread pool, and — for divergent cases — optionally
// ddmin-shrinks the lowest-index one to a reproducer.
//
// Holds the runner's determinism contract: stdout at --jobs=N is
// byte-identical to --jobs=1 (results are collected by submission index;
// the shrinker only ever runs on the lowest-index divergence, which is
// --jobs-independent). Exit code: 0 campaign clean, 1 divergence found,
// 2 usage error.
//
//   fuzz_driver [--seed=S] [--count=N] [--jobs=N] [--budget=C] [--shrink]
//               [--faults[=N]] [--corpus DIR] [--save DIR] [--emit-corpus]
//               [--inject-lru-bug] [--no-progress] [--help]
//
//   --seed=S          campaign seed (default 1); case i uses case_seed(S, i)
//   --count=N         generated cases (default 25; ignored with --corpus)
//   --budget=C        per-run instruction budget (default 20000000)
//   --shrink          shrink the first divergent case to a reproducer
//                     (programs and fault schedules are minimized jointly)
//   --faults[=N]      attach N scheduled faults per generated case (default
//                     12 when bare), arming the oracle's robustness clause:
//                     a breach or an unclassified fault is a divergence
//   --corpus DIR      replay *.sm cases from DIR instead of generating
//   --save DIR        write divergent cases (and the shrunk reproducer) here
//   --emit-corpus     with --save: write EVERY generated case (seeds a corpus)
//   --inject-lru-bug  plant the deliberate memo-LRU billing bug (oracle
//                     self-test: the campaign must catch it)
//   --snapshot-prefix[=P]
//                     fork-server mode: instead of the cross-engine sweep,
//                     run each case once under split-break, checkpoint the
//                     machine at P% of the run (default 90), then reset it
//                     in place from the in-memory snapshot for each
//                     iteration — verifying every reset observes exactly
//                     what a fresh full re-run observes. Per-case verdict
//                     lines stay deterministic on stdout; host timing
//                     (cases/sec both ways, speedup) goes to stderr.
//
// A saved reproducer's path is echoed on stderr; the exit code is nonzero
// for ANY divergence, security breaches included.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "asm/assembler.h"
#include "fuzz/corpus.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "fuzz/rng.h"
#include "fuzz/shrinker.h"
#include "fuzz/snapshot_replay.h"
#include "runner/experiment_runner.h"

namespace {

using namespace sm;
using arch::u32;
using arch::u64;

struct Args {
  u64 seed = 1;
  u32 count = 25;
  u32 jobs = 0;
  u64 budget = 20'000'000;
  bool shrink = false;
  u32 faults = 0;
  bool emit_corpus = false;
  bool inject_lru_bug = false;
  bool snapshot_prefix = false;
  u32 prefix_percent = 90;
  bool progress = true;
  std::string corpus_dir;
  std::string save_dir;
};

[[noreturn]] void usage(int rc) {
  std::fprintf(rc ? stderr : stdout,
               "usage: fuzz_driver [--seed=S] [--count=N] [--jobs=N] "
               "[--budget=C]\n"
               "                   [--shrink] [--corpus DIR] [--save DIR] "
               "[--emit-corpus]\n"
               "                   [--inject-lru-bug] [--snapshot-prefix[=P]] "
               "[--no-progress]\n");
  std::exit(rc);
}

bool eat_value(const char* arg, const char* name, int argc, char** argv,
               int& i, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  if (arg[n] == '=') {
    out = arg + n + 1;
    return true;
  }
  if (arg[n] == '\0') {
    if (i + 1 >= argc) usage(2);
    out = argv[++i];
    return true;
  }
  return false;
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string v;
    if (std::strcmp(arg, "--help") == 0) usage(0);
    else if (std::strcmp(arg, "--shrink") == 0) a.shrink = true;
    else if (std::strcmp(arg, "--faults") == 0) a.faults = 12;
    else if (eat_value(arg, "--faults", argc, argv, i, v))
      a.faults = static_cast<u32>(std::strtoul(v.c_str(), nullptr, 0));
    else if (std::strcmp(arg, "--snapshot-prefix") == 0)
      a.snapshot_prefix = true;
    else if (eat_value(arg, "--snapshot-prefix", argc, argv, i, v)) {
      a.snapshot_prefix = true;
      a.prefix_percent = static_cast<u32>(std::strtoul(v.c_str(), nullptr, 0));
      if (a.prefix_percent == 0 || a.prefix_percent >= 100) usage(2);
    }
    else if (std::strcmp(arg, "--emit-corpus") == 0) a.emit_corpus = true;
    else if (std::strcmp(arg, "--inject-lru-bug") == 0) a.inject_lru_bug = true;
    else if (std::strcmp(arg, "--no-progress") == 0) a.progress = false;
    else if (eat_value(arg, "--seed", argc, argv, i, v))
      a.seed = std::strtoull(v.c_str(), nullptr, 0);
    else if (eat_value(arg, "--count", argc, argv, i, v))
      a.count = static_cast<u32>(std::strtoul(v.c_str(), nullptr, 0));
    else if (eat_value(arg, "--jobs", argc, argv, i, v))
      a.jobs = static_cast<u32>(std::strtoul(v.c_str(), nullptr, 0));
    else if (eat_value(arg, "--budget", argc, argv, i, v))
      a.budget = std::strtoull(v.c_str(), nullptr, 0);
    else if (eat_value(arg, "--corpus", argc, argv, i, v))
      a.corpus_dir = v;
    else if (eat_value(arg, "--save", argc, argv, i, v))
      a.save_dir = v;
    else {
      std::fprintf(stderr, "fuzz_driver: unknown flag '%s'\n", arg);
      usage(2);
    }
  }
  return a;
}

// Oracle verdict for a case, absorbing assembler errors (a body that does
// not assemble is itself a campaign failure, not a crash).
std::string verdict_line(const fuzz::FuzzCase& c,
                         const fuzz::OracleOptions& opts) {
  try {
    const fuzz::OracleVerdict v = fuzz::check_case(c, opts);
    return v.ok ? "" : v.divergence;
  } catch (const assembler::AsmError& e) {
    return std::string("does not assemble: ") + e.what();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  fuzz::OracleOptions oracle_opts;
  oracle_opts.budget = args.budget;
  oracle_opts.inject_lru_bug = args.inject_lru_bug;

  // Assemble the case list: either a corpus replay or a seeded campaign.
  std::vector<std::string> labels;
  std::vector<fuzz::FuzzCase> cases;
  if (!args.corpus_dir.empty()) {
    for (auto& e : fuzz::load_corpus(args.corpus_dir)) {
      labels.push_back("corpus " + e.name);
      cases.push_back(std::move(e.c));
    }
    if (cases.empty()) {
      std::fprintf(stderr, "fuzz_driver: no *.sm cases under %s\n",
                   args.corpus_dir.c_str());
      return 2;
    }
  } else {
    fuzz::GenOptions gopts;
    gopts.fault_count = args.faults;
    for (u32 i = 0; i < args.count; ++i) {
      const u64 cs = fuzz::case_seed(args.seed, i);
      cases.push_back(fuzz::generate(cs, gopts));
      labels.push_back(runner::strf("case %04u", i));
    }
  }

  // Fork-server mode: per-case checkpoint/reset instead of the
  // cross-engine sweep. Verdict lines on stdout are pure functions of the
  // case (the determinism contract); host timing goes to stderr only.
  const fuzz::ForkServerOptions fs_opts{.budget = args.budget,
                                        .prefix_percent = args.prefix_percent};
  const fuzz::OracleConfig fs_cfg{.label = "split-break",
                                  .mode = core::ProtectionMode::kSplitAll};

  std::vector<runner::SweepPoint> points;
  points.reserve(cases.size());
  if (args.snapshot_prefix) {
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const fuzz::FuzzCase& c = cases[i];
      const std::string& label = labels[i];
      points.push_back({label, [&c, &label, &fs_opts, &fs_cfg] {
                          runner::PointResult r;
                          fuzz::ForkServerResult fr;
                          std::string asm_err;
                          try {
                            fr = fuzz::run_fork_server_case(c, fs_cfg, fs_opts);
                          } catch (const assembler::AsmError& e) {
                            asm_err = std::string("does not assemble: ") +
                                      e.what();
                          }
                          const std::string d =
                              !asm_err.empty() ? asm_err
                              : fr.ok          ? ""
                                               : fr.divergence;
                          r.text = runner::strf(
                              "%-12s seed=0x%016llx T=%llu P=%llu snap=%zuB "
                              "%s\n",
                              label.c_str(),
                              static_cast<unsigned long long>(c.seed),
                              static_cast<unsigned long long>(
                                  fr.total_instructions),
                              static_cast<unsigned long long>(
                                  fr.prefix_instructions),
                              fr.snapshot_bytes,
                              d.empty() ? "ok" : ("DIVERGED: " + d).c_str());
                          r.add("diverged", d.empty() ? 0 : 1);
                          r.add("rerun_s", fr.rerun_seconds);
                          r.add("reset_s", fr.reset_seconds);
                          return r;
                        }});
    }
  } else {
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const fuzz::FuzzCase& c = cases[i];
    const std::string& label = labels[i];
    points.push_back({label, [&c, &label, &oracle_opts] {
                        runner::PointResult r;
                        const std::string d = verdict_line(c, oracle_opts);
                        r.text = runner::strf(
                            "%-12s seed=0x%016llx mixed=%u %s\n", label.c_str(),
                            static_cast<unsigned long long>(c.seed),
                            c.mixed_text ? 1u : 0u,
                            d.empty() ? "ok" : ("DIVERGED: " + d).c_str());
                        r.add("diverged", d.empty() ? 0 : 1);
                        return r;
                      }});
  }
  }

  runner::RunnerOptions ropts;
  ropts.jobs = args.jobs;
  ropts.progress = args.progress;
  ropts.bench_name = "fuzz_driver";
  runner::ExperimentRunner runner(ropts);
  const runner::ResultTable table = runner.run(points);
  table.print(stdout);

  std::vector<std::size_t> divergent;
  for (std::size_t i = 0; i < table.size(); ++i)
    if (runner::metric(table[i], "diverged") != 0) divergent.push_back(i);

  std::printf("fuzz: %zu cases, %zu divergent\n", cases.size(),
              divergent.size());

  if (args.snapshot_prefix) {
    // Host-side timing summary (stderr: wall-clock is not part of the
    // deterministic stdout contract). "rerun" is what a fuzzer without a
    // fork server pays per iteration; "reset" is the snapshot restore +
    // suffix run.
    double rerun = 0, reset = 0;
    for (std::size_t i = 0; i < table.size(); ++i) {
      rerun += runner::metric(table[i], "rerun_s");
      reset += runner::metric(table[i], "reset_s");
    }
    const double iters =
        static_cast<double>(cases.size()) * fs_opts.resets;
    std::fprintf(stderr,
                 "forkserver: %zu cases x %u iterations at prefix %u%%\n"
                 "forkserver: rerun %.3fs (%.1f cases/sec)  reset %.3fs "
                 "(%.1f cases/sec)  speedup %.2fx\n",
                 cases.size(), fs_opts.resets, args.prefix_percent, rerun,
                 rerun > 0 ? iters / rerun : 0.0, reset,
                 reset > 0 ? iters / reset : 0.0,
                 reset > 0 ? rerun / reset : 0.0);
  }

  if (!args.save_dir.empty() && args.emit_corpus) {
    for (std::size_t i = 0; i < cases.size(); ++i)
      fuzz::save_case(args.save_dir, runner::strf("case_%04zu", i), cases[i]);
  } else if (!args.save_dir.empty()) {
    for (const std::size_t i : divergent)
      fuzz::save_case(args.save_dir, runner::strf("div_%04zu", i), cases[i]);
  }

  if (!divergent.empty() && args.shrink) {
    // Shrink the lowest-index divergence (deterministic across --jobs).
    const fuzz::FuzzCase& bad = cases[divergent.front()];
    const fuzz::ShrinkResult sr = fuzz::shrink(
        bad, [&oracle_opts](const fuzz::FuzzCase& cand) -> std::string {
          // Unlike the campaign verdict, a candidate that no longer
          // assembles does NOT count as reproducing — the shrinker must
          // not trade a genuine divergence for an assembler error.
          try {
            const fuzz::OracleVerdict v = fuzz::check_case(cand, oracle_opts);
            return v.ok ? "" : v.divergence;
          } catch (const assembler::AsmError&) {
            return "";
          }
        });
    std::printf("reproducer: %u instructions, %zu faults after %u predicate "
                "calls\n",
                fuzz::count_instructions(sr.reduced.body),
                sr.reduced.faults.faults.size(), sr.predicate_calls);
    std::printf("divergence: %s\n", sr.divergence.c_str());
    std::fputs(fuzz::to_corpus_file(sr.reduced).c_str(), stdout);
    if (!args.save_dir.empty()) {
      const std::string path =
          fuzz::save_case(args.save_dir,
                          runner::strf("repro_%04zu", divergent.front()),
                          sr.reduced);
      if (path.empty()) {
        std::fprintf(stderr, "fuzz_driver: FAILED to save reproducer\n");
        return 3;
      }
      std::fprintf(stderr, "reproducer: %s\n", path.c_str());
    }
  }

  return divergent.empty() ? 0 : 1;
}
