// smattack — run the exploit corpus against a chosen protection engine.
//
//   smattack [--engine none|split|nx|combined]
//            [--response break|observe|forensics]
//            [wilander|realworld|nxbypass|all]
//
// Prints one line per attack with its outcome. Exit status 0 if every
// attack behaved as the engine predicts (success on none, foiled on
// split/combined; nxbypass succeeds on nx).
#include <cstdio>
#include <cstring>
#include <string>

#include "attacks/nx_bypass.h"
#include "attacks/realworld.h"
#include "attacks/wilander.h"

using namespace sm;
using namespace sm::attacks;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: smattack [--engine none|split|nx|combined] "
               "[--response break|observe|forensics] "
               "[wilander|realworld|nxbypass|all]\n");
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  core::ProtectionMode mode = core::ProtectionMode::kSplitAll;
  core::ResponseMode response = core::ResponseMode::kBreak;
  std::string suite = "all";

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) std::exit(usage());
      return argv[++i];
    };
    if (a == "--engine") {
      const std::string e = next();
      if (e == "none") {
        mode = core::ProtectionMode::kNone;
      } else if (e == "split") {
        mode = core::ProtectionMode::kSplitAll;
      } else if (e == "nx") {
        mode = core::ProtectionMode::kHardwareNx;
      } else if (e == "combined") {
        mode = core::ProtectionMode::kNxPlusSplitMixed;
      } else {
        return usage();
      }
    } else if (a == "--response") {
      const std::string r = next();
      if (r == "break") {
        response = core::ResponseMode::kBreak;
      } else if (r == "observe") {
        response = core::ResponseMode::kObserve;
      } else if (r == "forensics") {
        response = core::ResponseMode::kForensics;
      } else {
        return usage();
      }
    } else if (a == "--help" || a == "-h") {
      return usage();
    } else {
      suite = a;
    }
  }

  const bool expect_compromise = mode == core::ProtectionMode::kNone;
  int mismatches = 0;

  std::printf("engine: %s\n\n", core::to_string(mode));

  if (suite == "wilander" || suite == "all") {
    std::printf("== Wilander benchmark ==\n");
    for (const auto t : wilander::kAllTechniques) {
      for (const auto s : wilander::kAllSegments) {
        if (!wilander::applicable(t, s)) continue;
        const auto r = wilander::run_case(t, s, mode);
        const bool ok = r.shell_spawned == expect_compromise;
        if (!ok) ++mismatches;
        std::printf("  %-16s %-6s %-12s %s\n", wilander::to_string(t),
                    wilander::to_string(s),
                    r.shell_spawned ? "COMPROMISED" : "foiled",
                    ok ? "" : "  << unexpected");
      }
    }
  }

  if (suite == "realworld" || suite == "all") {
    std::printf("== real-world exploits ==\n");
    for (const auto e : realworld::kAllExploits) {
      realworld::AttackOptions opts;
      opts.response = response;
      const auto r = realworld::run_attack(e, mode, opts);
      const bool expected =
          r.shell_spawned ==
          (expect_compromise || response == core::ResponseMode::kObserve);
      if (!expected) ++mismatches;
      std::printf("  %-16s %-12s detected=%d %s\n", realworld::to_string(e),
                  r.shell_spawned ? "COMPROMISED" : "foiled", r.detected,
                  expected ? "" : "  << unexpected");
    }
  }

  if (suite == "nxbypass" || suite == "all") {
    std::printf("== DEP/NX bypass ==\n");
    const auto r = run_nx_bypass(mode);
    const bool expect_bypass = mode == core::ProtectionMode::kNone ||
                               mode == core::ProtectionMode::kHardwareNx;
    const bool ok = r.shell_spawned == expect_bypass;
    if (!ok) ++mismatches;
    std::printf("  mmap-RWX chain   %-12s %s\n",
                r.shell_spawned ? "COMPROMISED" : "foiled",
                ok ? "" : "  << unexpected");
  }

  if (mismatches != 0) {
    std::printf("\n%d attack(s) behaved unexpectedly for this engine\n",
                mismatches);
    return 1;
  }
  std::printf("\nall attacks behaved as this engine predicts\n");
  return 0;
}
