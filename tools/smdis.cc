// smdis — assemble a guest program and disassemble/inspect the result.
//
//   smdis [--symbols] [--data] [--no-libc] program.s
//
// Prints an objdump-style listing of the text section; --symbols adds the
// symbol table, --data hex-dumps the data section.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "asm/assembler.h"
#include "asm/disassembler.h"
#include "guest/guestlib.h"

using namespace sm;

int main(int argc, char** argv) {
  bool symbols = false;
  bool data = false;
  bool with_libc = true;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--symbols") {
      symbols = true;
    } else if (a == "--data") {
      data = true;
    } else if (a == "--no-libc") {
      with_libc = false;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr,
                   "usage: smdis [--symbols] [--data] [--no-libc] "
                   "program.s\n");
      return 64;
    } else {
      path = a;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "smdis: no input file\n");
    return 64;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "smdis: cannot open %s\n", path.c_str());
    return 66;
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  assembler::Program program;
  try {
    program = assembler::assemble(with_libc ? guest::program(ss.str())
                                            : guest::prelude() + ss.str());
  } catch (const assembler::AsmError& e) {
    std::fprintf(stderr, "smdis: %s\n", e.what());
    return 65;
  }

  std::printf("text (%zu bytes at 0x%08x):\n", program.text.size(),
              program.layout.text_base);
  std::printf("%s",
              assembler::format(assembler::disassemble(
                                    program.text, program.layout.text_base))
                  .c_str());

  if (data) {
    std::printf("\ndata (%zu bytes at 0x%08x):\n", program.data.size(),
                program.layout.data_base);
    for (std::size_t i = 0; i < program.data.size(); i += 16) {
      std::printf("%08zx: ", program.layout.data_base + i);
      for (std::size_t j = i; j < i + 16 && j < program.data.size(); ++j) {
        std::printf("%02x ", program.data[j]);
      }
      std::printf("\n");
    }
    std::printf("\nbss: %u bytes at 0x%08x\n", program.bss_size,
                program.layout.bss_base);
  }

  if (symbols) {
    std::printf("\nsymbols:\n");
    for (const auto& [name, addr] : program.symbols) {
      std::printf("  %08x %s\n", addr, name.c_str());
    }
  }
  return 0;
}
