// smrun — assemble and run a guest program on the simulated machine.
//
//   smrun [options] program.s
//
// Options:
//   --engine none|split|nx|combined   protection engine (default: split)
//   --response break|observe|forensics|recovery
//   --fraction N          split N% of pages (implies the split engine)
//   --soft-tlb            SPARC-style software-managed TLBs (paper SS4.7)
//   --eager               eager load-time page population (paper SS5.1)
//   --stack-rand          Linux-2.6-style stack randomization
//   --input FILE|-        bytes fed to the guest's network fd (stdin with -)
//   --budget N            instruction budget (default 100M)
//   --stats               print cycle/TLB/fault statistics
//   --klog                print the kernel log
//   --no-libc             do not link the guest libc/prelude
//
// Exit status: the guest's exit code; 124 if the budget ran out; 125 on a
// kill (SIGSEGV/SIGILL); 126 if all processes blocked.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "asm/assembler.h"
#include "core/split_engine.h"
#include "guest/guestlib.h"
#include "image/image.h"
#include "kernel/kernel.h"

using namespace sm;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: smrun [--engine none|split|nx|combined] "
               "[--response break|observe|forensics|recovery]\n"
               "             [--fraction N] [--soft-tlb] [--eager] "
               "[--stack-rand] [--input FILE|-]\n"
               "             [--budget N] [--stats] [--klog] [--no-libc] "
               "program.s\n");
  return 64;
}

std::string slurp(std::istream& in) {
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string engine = "split";
  std::string response = "break";
  std::string input_path;
  std::string source_path;
  int fraction = -1;
  bool soft_tlb = false;
  bool eager = false;
  bool stack_rand = false;
  bool show_stats = false;
  bool show_klog = false;
  bool with_libc = true;
  arch::u64 budget = 100'000'000;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "smrun: %s needs a value\n", a.c_str());
        std::exit(64);
      }
      return argv[++i];
    };
    if (a == "--engine") {
      engine = next();
    } else if (a == "--response") {
      response = next();
    } else if (a == "--fraction") {
      fraction = std::atoi(next());
    } else if (a == "--soft-tlb") {
      soft_tlb = true;
    } else if (a == "--eager") {
      eager = true;
    } else if (a == "--stack-rand") {
      stack_rand = true;
    } else if (a == "--input") {
      input_path = next();
    } else if (a == "--budget") {
      budget = std::strtoull(next(), nullptr, 10);
    } else if (a == "--stats") {
      show_stats = true;
    } else if (a == "--klog") {
      show_klog = true;
    } else if (a == "--no-libc") {
      with_libc = false;
    } else if (a == "--help" || a == "-h") {
      return usage();
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "smrun: unknown option %s\n", a.c_str());
      return usage();
    } else {
      source_path = a;
    }
  }
  if (source_path.empty()) return usage();

  std::ifstream src_file(source_path);
  if (!src_file) {
    std::fprintf(stderr, "smrun: cannot open %s\n", source_path.c_str());
    return 66;
  }
  const std::string body = slurp(src_file);

  core::ResponseMode rmode = core::ResponseMode::kBreak;
  if (response == "observe") {
    rmode = core::ResponseMode::kObserve;
  } else if (response == "forensics") {
    rmode = core::ResponseMode::kForensics;
  } else if (response == "recovery") {
    rmode = core::ResponseMode::kRecovery;
  } else if (response != "break") {
    std::fprintf(stderr, "smrun: unknown response mode %s\n",
                 response.c_str());
    return 64;
  }

  std::unique_ptr<kernel::ProtectionEngine> eng;
  if (fraction >= 0) {
    eng = std::make_unique<core::SplitMemoryEngine>(
        core::SplitPolicy::fraction(static_cast<arch::u32>(fraction)), rmode);
  } else if (engine == "none") {
    eng = core::make_engine(core::ProtectionMode::kNone, rmode);
  } else if (engine == "split") {
    eng = core::make_engine(core::ProtectionMode::kSplitAll, rmode);
  } else if (engine == "nx") {
    eng = core::make_engine(core::ProtectionMode::kHardwareNx, rmode);
  } else if (engine == "combined") {
    eng = core::make_engine(core::ProtectionMode::kNxPlusSplitMixed, rmode);
  } else {
    std::fprintf(stderr, "smrun: unknown engine %s\n", engine.c_str());
    return 64;
  }

  kernel::KernelConfig cfg;
  cfg.software_tlb = soft_tlb;
  cfg.eager_load = eager;
  cfg.stack_randomization = stack_rand;
  kernel::Kernel k(cfg);
  k.set_engine(std::move(eng));

  try {
    const auto program =
        assembler::assemble(with_libc ? guest::program(body)
                                      : guest::prelude() + body);
    image::BuildOptions opts;
    opts.name = source_path;
    k.register_image(image::build_image(program, opts));
  } catch (const assembler::AsmError& e) {
    std::fprintf(stderr, "smrun: %s\n", e.what());
    return 65;
  }

  const kernel::Pid pid = k.spawn(source_path);
  auto chan = k.attach_channel(pid);
  if (!input_path.empty()) {
    if (input_path == "-") {
      chan->host_write(slurp(std::cin));
    } else {
      std::ifstream in(input_path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "smrun: cannot open %s\n", input_path.c_str());
        return 66;
      }
      chan->host_write(slurp(in));
    }
  }

  const auto rr = k.run(budget);

  kernel::Process& p = *k.process(pid);
  std::fputs(p.console.c_str(), stdout);
  const std::string net_out = chan->host_read_string();
  if (!net_out.empty()) {
    std::fprintf(stdout, "%s", net_out.c_str());
  }
  for (const auto& ev : k.detections()) {
    std::fprintf(stderr,
                 "[smrun] code injection detected: pid %u EIP 0x%08x "
                 "(mode %s)\n",
                 ev.pid, ev.eip, ev.mode.c_str());
    if (!ev.disassembly.empty()) {
      std::fprintf(stderr, "%s", ev.disassembly.c_str());
    }
  }
  if (show_klog) {
    for (const auto& line : k.klog()) {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }
  if (show_stats) {
    std::ostringstream ss;
    ss << k.stats();
    std::fprintf(stderr, "[smrun] %s\n", ss.str().c_str());
  }

  if (rr == kernel::Kernel::RunResult::kBudgetExhausted) return 124;
  if (rr == kernel::Kernel::RunResult::kAllBlocked) return 126;
  if (p.exit_kind != kernel::ExitKind::kExited) return 125;
  return static_cast<int>(p.exit_code & 0x7F);
}
