// smsnap: checkpoint/restore workbench for the simulated machine.
//
// Drives Kernel::save/restore (src/snapshot) from the command line, using
// the fuzz generator's seeded cases as reproducible workloads:
//
//   smsnap save   --seed=S [--index=I] [--at=N] [--config=LABEL] -o FILE
//       generate case (S, I), boot it under the named oracle config, run
//       N instructions (default: to completion), serialize the machine
//   smsnap resume FILE --seed=S [--index=I] [--config=LABEL] [--budget=C]
//       reconstruct the SAME kernel shape, restore FILE into it, run the
//       remaining budget, report exit status / console / key counters
//   smsnap dump   FILE
//       schema-free field-by-field text dump (works on any snapshot —
//       every field is self-describing)
//   smsnap diff   A B
//       field-by-field comparison; prints differing fields, exit 1 if
//       the machines differ, 2 on malformed input
//
// resume deliberately takes the generation flags again: restore() is an
// in-place reset that validates the receiving kernel's config and engine
// against the stream, so reconstructing the kernel from the same flags is
// what makes a snapshot a *portable* checkpoint of a reproducible run.
//
//   --config accepts the oracle's labels (split-break, none, nx,
//   pageexec, nx+split, split-soft-tlb, split-eager, ...); default
//   split-break.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "fuzz/rng.h"
#include "kernel/kernel.h"
#include "snapshot/serializer.h"

namespace {

using namespace sm;
using arch::u32;
using arch::u64;

[[noreturn]] void usage(int rc) {
  std::fprintf(
      rc ? stderr : stdout,
      "usage: smsnap save   --seed=S [--index=I] [--at=N] [--budget=C]\n"
      "                     [--config=LABEL] -o FILE\n"
      "       smsnap resume FILE --seed=S [--index=I] [--budget=C]\n"
      "                     [--config=LABEL]\n"
      "       smsnap dump   FILE\n"
      "       smsnap diff   A B\n");
  std::exit(rc);
}

struct Args {
  std::string cmd;
  std::vector<std::string> files;
  u64 seed = 1;
  u32 index = 0;
  u64 at = UINT64_MAX;  // save: instruction count; default = completion
  u64 budget = 20'000'000;
  std::string config = "split-break";
  std::string out;
};

Args parse(int argc, char** argv) {
  if (argc < 2) usage(2);
  Args a;
  a.cmd = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* name, std::string& out) {
      const std::size_t n = std::strlen(name);
      if (arg.compare(0, n, name) != 0) return false;
      if (arg.size() > n && arg[n] == '=') {
        out = arg.substr(n + 1);
        return true;
      }
      if (arg.size() == n) {
        if (i + 1 >= argc) usage(2);
        out = argv[++i];
        return true;
      }
      return false;
    };
    std::string v;
    if (arg == "--help") usage(0);
    else if (val("--seed", v)) a.seed = std::strtoull(v.c_str(), nullptr, 0);
    else if (val("--index", v))
      a.index = static_cast<u32>(std::strtoul(v.c_str(), nullptr, 0));
    else if (val("--at", v)) a.at = std::strtoull(v.c_str(), nullptr, 0);
    else if (val("--budget", v))
      a.budget = std::strtoull(v.c_str(), nullptr, 0);
    else if (val("--config", v)) a.config = v;
    else if (val("-o", v)) a.out = v;
    else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "smsnap: unknown flag '%s'\n", arg.c_str());
      usage(2);
    } else {
      a.files.push_back(arg);
    }
  }
  return a;
}

fuzz::OracleConfig find_config(const std::string& label) {
  for (const auto& c : fuzz::behavioral_configs())
    if (c.label == label) return c;
  for (const auto& c : fuzz::billing_configs())
    if (c.label == label) return c;
  std::fprintf(stderr, "smsnap: unknown --config '%s'; known:\n",
               label.c_str());
  for (const auto& c : fuzz::behavioral_configs())
    std::fprintf(stderr, "  %s\n", c.label.c_str());
  for (const auto& c : fuzz::billing_configs())
    std::fprintf(stderr, "  %s\n", c.label.c_str());
  std::exit(2);
}

std::unique_ptr<kernel::Kernel> boot(const Args& a) {
  const fuzz::FuzzCase c =
      fuzz::generate(fuzz::case_seed(a.seed, a.index));
  return fuzz::make_case_kernel(c, find_config(a.config));
}

void report(kernel::Kernel& k, kernel::Kernel::RunResult res) {
  const char* rs = res == kernel::Kernel::RunResult::kAllExited ? "exited"
                   : res == kernel::Kernel::RunResult::kAllBlocked
                       ? "blocked"
                       : "budget-exhausted";
  const auto& st = k.stats();
  std::printf("result:       %s\n", rs);
  std::printf("instructions: %llu\n",
              static_cast<unsigned long long>(st.instructions));
  std::printf("cycles:       %llu\n",
              static_cast<unsigned long long>(st.cycles));
  std::printf("syscalls:     %llu\n",
              static_cast<unsigned long long>(st.syscalls));
  for (kernel::Pid pid = 1; pid <= 64; ++pid) {
    const kernel::Process* p = k.process(pid);
    if (p == nullptr) continue;
    std::printf("pid %u: exit=%d code=%u console=%zuB\n", pid,
                static_cast<int>(p->exit_kind), p->exit_code,
                p->console.size());
  }
}

int cmd_save(const Args& a) {
  if (a.out.empty()) usage(2);
  auto k = boot(a);
  const auto res = k->run(a.at == UINT64_MAX ? a.budget : a.at);
  std::ofstream os(a.out, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "smsnap: cannot open %s\n", a.out.c_str());
    return 2;
  }
  k->save(os);
  os.flush();
  std::printf("saved %s at instruction %llu (%s)\n", a.out.c_str(),
              static_cast<unsigned long long>(k->stats().instructions),
              res == kernel::Kernel::RunResult::kBudgetExhausted
                  ? "mid-run"
                  : "final state");
  return os ? 0 : 2;
}

int cmd_resume(const Args& a) {
  if (a.files.size() != 1) usage(2);
  std::ifstream is(a.files[0], std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "smsnap: cannot open %s\n", a.files[0].c_str());
    return 2;
  }
  auto k = boot(a);
  k->restore(is);
  const u64 done = k->stats().instructions;
  const auto res = k->run(a.budget > done ? a.budget - done : 0);
  std::printf("resumed from instruction %llu\n",
              static_cast<unsigned long long>(done));
  report(*k, res);
  return 0;
}

int cmd_dump(const Args& a) {
  if (a.files.size() != 1) usage(2);
  std::ifstream is(a.files[0], std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "smsnap: cannot open %s\n", a.files[0].c_str());
    return 2;
  }
  for (const auto& line : snapshot::dump(is))
    std::printf("%s = %s\n", line.key.c_str(), line.value.c_str());
  return 0;
}

int cmd_diff(const Args& a) {
  if (a.files.size() != 2) usage(2);
  std::ifstream ia(a.files[0], std::ios::binary);
  std::ifstream ib(a.files[1], std::ios::binary);
  if (!ia || !ib) {
    std::fprintf(stderr, "smsnap: cannot open input\n");
    return 2;
  }
  const auto lines = snapshot::diff(ia, ib);
  for (const auto& l : lines) std::printf("%s\n", l.c_str());
  if (lines.empty()) {
    std::printf("snapshots are field-identical\n");
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  try {
    if (a.cmd == "save") return cmd_save(a);
    if (a.cmd == "resume") return cmd_resume(a);
    if (a.cmd == "dump") return cmd_dump(a);
    if (a.cmd == "diff") return cmd_diff(a);
  } catch (const sm::snapshot::SnapshotError& e) {
    std::fprintf(stderr, "smsnap: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr, "smsnap: unknown command '%s'\n", a.cmd.c_str());
  usage(2);
}
