// smtrace — run a guest program with the trace layer enabled and inspect
// the recorded event stream (DESIGN.md §11).
//
//   smtrace [options] program.s
//
// Options:
//   --engine none|split|nx|combined   protection engine (default: split)
//   --fraction N          split N% of pages (implies the split engine)
//   --soft-tlb            SPARC-style software-managed TLBs (paper SS4.7)
//   --budget N            instruction budget (default 100M)
//   --ring N              trace ring capacity in events (default 65536)
//   --kind NAME           keep only events of this kind (repeatable;
//                         names as printed, e.g. split-itlb-load)
//   --pid N               keep only events of this pid
//   --last N              keep only the last N events (after filtering)
//   --summary             print the cycle-attribution summary (paper SS4.6)
//                         instead of the event dump
//   --requests N          with --summary: add a per-cause cycles/request
//                         column (N = requests the traced run served), tying
//                         the SS4.6 decomposition to request-level cost
//   --chrome PATH|-       write Chrome trace_event JSON (load in
//                         about://tracing or Perfetto) to PATH or stdout
//   --no-libc             do not link the guest libc/prelude
//
// Exit status: 0 on a traced run, 64 on usage errors, 65 on assembly
// errors, 66 on unreadable files, 69 if tracing is compiled out.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "asm/assembler.h"
#include "core/split_engine.h"
#include "guest/guestlib.h"
#include "image/image.h"
#include "kernel/kernel.h"
#include "trace/chrome_export.h"
#include "trace/trace.h"

using namespace sm;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: smtrace [--engine none|split|nx|combined] "
               "[--fraction N] [--soft-tlb]\n"
               "               [--budget N] [--ring N] [--kind NAME] "
               "[--pid N] [--last N]\n"
               "               [--summary [--requests N]] [--chrome PATH|-] "
               "[--no-libc] program.s\n");
  return 64;
}

std::string slurp(std::istream& in) {
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool kind_matches(const std::vector<std::string>& kinds, trace::EventKind k) {
  if (kinds.empty()) return true;
  for (const std::string& name : kinds) {
    if (name == trace::kind_name(k)) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string engine = "split";
  std::string chrome_path;
  std::string source_path;
  std::vector<std::string> kinds;
  int fraction = -1;
  long pid_filter = -1;
  long last = -1;
  bool soft_tlb = false;
  bool summary = false;
  bool with_libc = true;
  arch::u64 requests = 0;
  arch::u64 budget = 100'000'000;
  arch::u32 ring = 1u << 16;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "smtrace: %s needs a value\n", a.c_str());
        std::exit(64);
      }
      return argv[++i];
    };
    if (a == "--engine") {
      engine = next();
    } else if (a == "--fraction") {
      fraction = std::atoi(next());
    } else if (a == "--soft-tlb") {
      soft_tlb = true;
    } else if (a == "--budget") {
      budget = std::strtoull(next(), nullptr, 10);
    } else if (a == "--ring") {
      ring = static_cast<arch::u32>(std::strtoul(next(), nullptr, 10));
    } else if (a == "--kind") {
      kinds.push_back(next());
    } else if (a == "--pid") {
      pid_filter = std::atol(next());
    } else if (a == "--last") {
      last = std::atol(next());
    } else if (a == "--summary") {
      summary = true;
    } else if (a == "--requests") {
      requests = std::strtoull(next(), nullptr, 10);
    } else if (a == "--chrome") {
      chrome_path = next();
    } else if (a == "--no-libc") {
      with_libc = false;
    } else if (a == "--help" || a == "-h") {
      return usage();
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "smtrace: unknown option %s\n", a.c_str());
      return usage();
    } else {
      source_path = a;
    }
  }
  if (source_path.empty()) return usage();

  std::ifstream src_file(source_path);
  if (!src_file) {
    std::fprintf(stderr, "smtrace: cannot open %s\n", source_path.c_str());
    return 66;
  }
  const std::string body = slurp(src_file);

  std::unique_ptr<kernel::ProtectionEngine> eng;
  if (fraction >= 0) {
    eng = std::make_unique<core::SplitMemoryEngine>(
        core::SplitPolicy::fraction(static_cast<arch::u32>(fraction)),
        core::ResponseMode::kBreak);
  } else if (engine == "none") {
    eng = core::make_engine(core::ProtectionMode::kNone);
  } else if (engine == "split") {
    eng = core::make_engine(core::ProtectionMode::kSplitAll);
  } else if (engine == "nx") {
    eng = core::make_engine(core::ProtectionMode::kHardwareNx);
  } else if (engine == "combined") {
    eng = core::make_engine(core::ProtectionMode::kNxPlusSplitMixed);
  } else {
    std::fprintf(stderr, "smtrace: unknown engine %s\n", engine.c_str());
    return 64;
  }

  kernel::KernelConfig cfg;
  cfg.software_tlb = soft_tlb;
  cfg.trace = true;
  cfg.trace_ring_capacity = ring;
  kernel::Kernel k(cfg);
  k.set_engine(std::move(eng));
  if (k.trace_sink() == nullptr) {
    std::fprintf(stderr,
                 "smtrace: tracing compiled out (build with -DSM_TRACE=ON)\n");
    return 69;
  }

  try {
    const auto program =
        assembler::assemble(with_libc ? guest::program(body)
                                      : guest::prelude() + body);
    image::BuildOptions opts;
    opts.name = source_path;
    k.register_image(image::build_image(program, opts));
  } catch (const assembler::AsmError& e) {
    std::fprintf(stderr, "smtrace: %s\n", e.what());
    return 65;
  }

  k.spawn(source_path);
  k.run(budget);

  const trace::TraceSink& sink = *k.trace_sink();
  if (!chrome_path.empty()) {
    const std::string json = trace::chrome_trace_json(sink.events());
    if (chrome_path == "-") {
      std::fputs(json.c_str(), stdout);
    } else {
      std::ofstream out(chrome_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "smtrace: cannot write %s\n",
                     chrome_path.c_str());
        return 66;
      }
      out << json;
    }
    return 0;
  }
  if (summary) {
    std::fputs(trace::format_summary(sink.summary(), requests).c_str(),
               stdout);
    return 0;
  }

  // Text dump, oldest first: apply --kind/--pid, then --last.
  const trace::RingBuffer<trace::Event>& events = sink.events();
  std::vector<const trace::Event*> selected;
  selected.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const trace::Event& e = events[i];
    if (!kind_matches(kinds, e.kind)) continue;
    if (pid_filter >= 0 && e.pid != static_cast<arch::u32>(pid_filter)) {
      continue;
    }
    selected.push_back(&e);
  }
  std::size_t first = 0;
  if (last >= 0 && selected.size() > static_cast<std::size_t>(last)) {
    first = selected.size() - static_cast<std::size_t>(last);
  }
  if (events.dropped() != 0) {
    std::fprintf(stderr, "smtrace: ring overflowed, %llu oldest dropped\n",
                 static_cast<unsigned long long>(events.dropped()));
  }
  for (std::size_t i = first; i < selected.size(); ++i) {
    const trace::Event& e = *selected[i];
    std::printf("%12llu %-20s pid=%-3u va=0x%08x info=0x%08x arg=%u\n",
                static_cast<unsigned long long>(e.cycles),
                trace::kind_name(e.kind), e.pid, e.vaddr, e.info, e.arg);
  }
  return 0;
}
